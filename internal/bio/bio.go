// Package bio provides the biological cellular-network substrate motivating
// the paper's title: a population of anonymous cells communicating by
// broadcast sensing (quorum-sensing style), subject to transient faults
// (environmental state corruption) and link churn that keeps the diameter
// within a fixed bound.
//
// The paper evaluates no wet-lab system; this substrate is the synthetic
// equivalent that exercises exactly the code paths the paper's fault
// tolerance story is about: arbitrary corruption of cell states at arbitrary
// times (self-stabilization recovers), and topology perturbations within the
// D-bounded-diameter family (the graph class the algorithms are designed
// for). See DESIGN.md for the substitution note.
package bio

import (
	"fmt"
	"math/rand"

	"thinunison/internal/core"
	"thinunison/internal/graph"
	"thinunison/internal/sched"
	"thinunison/internal/sim"
)

// Network is a cellular network running AlgAU as its pulse clock.
type Network struct {
	g   *graph.Graph
	au  *core.AU
	eng *sim.Engine
	rng *rand.Rand

	faultsInjected int
	recoveries     []int
}

// Config configures a cellular network.
type Config struct {
	// Cells is the population size (must be >= 2).
	Cells int
	// DiameterBound is the D the network is engineered to stay within.
	// Zero means the built topology's own diameter.
	DiameterBound int
	// EdgeDensity is the extra-chord probability of the random connected
	// topology (default 0.2).
	EdgeDensity float64
	// Scheduler drives cell activations; nil means random-subset (cells
	// wake up asynchronously).
	Scheduler sched.Scheduler
	// Seed seeds all randomness.
	Seed int64
}

// NewNetwork builds a network with a random connected topology and AlgAU as
// the pulse clock, starting from an arbitrary (random) configuration — cells
// have no initialization coordination, which is the biological premise.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Cells < 2 {
		return nil, fmt.Errorf("bio: need at least 2 cells, got %d", cfg.Cells)
	}
	if cfg.EdgeDensity == 0 {
		cfg.EdgeDensity = 0.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g, err := graph.RandomConnected(cfg.Cells, cfg.EdgeDensity, rng)
	if err != nil {
		return nil, err
	}
	d := cfg.DiameterBound
	if d == 0 {
		d = g.Diameter()
	}
	if got := g.Diameter(); got > d {
		return nil, fmt.Errorf("bio: topology diameter %d exceeds bound %d", got, d)
	}
	au, err := core.NewAU(maxInt(1, d))
	if err != nil {
		return nil, err
	}
	s := cfg.Scheduler
	if s == nil {
		s = sched.NewRandomSubset(0.5, 16, rand.New(rand.NewSource(cfg.Seed+1)))
	}
	eng, err := sim.New(g, au, sim.Options{Scheduler: s, Seed: cfg.Seed + 2})
	if err != nil {
		return nil, err
	}
	return &Network{g: g, au: au, eng: eng, rng: rng}, nil
}

// Graph returns the topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// AU returns the pulse-clock algorithm.
func (n *Network) AU() *core.AU { return n.au }

// Engine exposes the underlying engine (for custom drivers).
func (n *Network) Engine() *sim.Engine { return n.eng }

// Synchronized reports whether the population's pulse clock has stabilized
// (the graph is good: safety holds and every cell pulses forever after).
func (n *Network) Synchronized() bool {
	return n.au.GraphGood(n.g, n.eng.Config())
}

// RunUntilSynchronized runs until the pulse clock stabilizes, returning the
// number of rounds taken.
func (n *Network) RunUntilSynchronized(maxRounds int) (int, error) {
	return n.eng.RunUntil(func(e *sim.Engine) bool {
		return n.au.GraphGood(n.g, e.Config())
	}, maxRounds)
}

// InjectTransientFaults corrupts the given number of random cells to random
// states (an environmental shock), returning the affected cells.
func (n *Network) InjectTransientFaults(cells int) []int {
	n.faultsInjected += cells
	return n.eng.InjectFaults(cells)
}

// Recoveries returns the recovery times (in rounds) recorded by
// MeasureRecovery calls.
func (n *Network) Recoveries() []int {
	out := make([]int, len(n.recoveries))
	copy(out, n.recoveries)
	return out
}

// MeasureRecovery injects a fault burst and measures re-stabilization time
// in rounds, recording it.
func (n *Network) MeasureRecovery(cells, maxRounds int) (int, error) {
	n.InjectTransientFaults(cells)
	rounds, err := n.RunUntilSynchronized(maxRounds)
	if err != nil {
		return rounds, err
	}
	n.recoveries = append(n.recoveries, rounds)
	return rounds, nil
}

// PulseCounts runs the synchronized network for the given number of rounds
// and returns how many pulses (clock advances) each cell performed — the
// liveness payoff: every cell keeps pulsing, in lockstep ±1.
func (n *Network) PulseCounts(rounds int) ([]int, error) {
	if !n.Synchronized() {
		return nil, fmt.Errorf("bio: network not synchronized")
	}
	counts := make([]int, n.g.N())
	prev := n.eng.Config().Clone()
	target := n.eng.Rounds() + rounds
	for n.eng.Rounds() < target {
		if err := n.eng.Step(); err != nil {
			return nil, err
		}
		cur := n.eng.Config()
		for v := range counts {
			if cur[v] != prev[v] {
				counts[v]++
			}
		}
		copy(prev, cur)
	}
	return counts, nil
}

// Phases returns the current clock value of every cell, or -1 for cells in
// faulty turns (for visualization).
func (n *Network) Phases() []int {
	cfg := n.eng.Config()
	out := make([]int, len(cfg))
	for v, q := range cfg {
		if n.au.IsOutput(q) {
			out[v] = n.au.Output(q)
		} else {
			out[v] = -1
		}
	}
	return out
}

// Churn rewires the topology in place: it removes and adds random chords
// while keeping the graph connected and within the diameter bound. The cell
// states, the engine, the scheduler and the rng stream all carry over —
// topology change is a transient disruption the clock recovers from, not a
// restart. Each attempt stages its rewiring in a graph.Delta, commits it
// through the engine's churn path (sim.Engine.ApplyDelta, which repairs the
// frontier, observers and shard classification in the same motion), checks
// the exact diameter, and backs an inadmissible attempt out with the
// inverse batch. If no admissible rewiring is found in a bounded number of
// attempts, the topology is left unchanged (ok=false).
func (n *Network) Churn(rewires int) (ok bool, err error) {
	d := n.au.D()
	for attempt := 0; attempt < 32; attempt++ {
		delta := graph.NewDelta(n.g)
		edges := n.g.Edges()
		// Drop up to `rewires` random edges.
		drop := map[int]bool{}
		for i := 0; i < rewires && i < len(edges); i++ {
			drop[n.rng.Intn(len(edges))] = true
		}
		for i := range drop {
			if err := delta.DeleteEdge(edges[i][0], edges[i][1]); err != nil {
				return false, err
			}
		}
		// Add the same number of random chords.
		for i := 0; i < len(drop); i++ {
			u, v := n.rng.Intn(n.g.N()), n.rng.Intn(n.g.N())
			if u != v {
				if err := delta.InsertEdge(u, v); err != nil {
					return false, err
				}
			}
		}
		// Cheap pre-check on the merged view, then commit and verify the
		// exact diameter (the bound is a hard contract of the substrate).
		if !delta.Connected() {
			continue
		}
		changes, err := n.eng.ApplyDelta(delta)
		if err != nil {
			return false, err
		}
		if len(changes) == 0 {
			continue // rewiring cancelled itself (chords equal to drops)
		}
		if n.g.Diameter() <= d {
			return true, nil
		}
		// Back out: apply the inverse batch through the same path.
		inverse := graph.NewDelta(n.g)
		for _, c := range changes {
			if c.Added {
				err = inverse.DeleteEdge(c.U, c.V)
			} else {
				err = inverse.InsertEdge(c.U, c.V)
			}
			if err != nil {
				return false, err
			}
		}
		if _, err := n.eng.ApplyDelta(inverse); err != nil {
			return false, err
		}
	}
	return false, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
