package bio_test

import (
	"testing"

	"thinunison/internal/bio"
)

func maxRounds(n *bio.Network) int {
	k := n.AU().K()
	return 60*k*k*k + 500
}

func TestNetworkValidation(t *testing.T) {
	if _, err := bio.NewNetwork(bio.Config{Cells: 1}); err == nil {
		t.Error("Cells=1 should fail")
	}
	if _, err := bio.NewNetwork(bio.Config{Cells: 20, DiameterBound: 1, Seed: 1}); err == nil {
		t.Error("random topology cannot satisfy diameter bound 1; expect failure")
	}
}

// TestSynchronizeFromScratch: an uninitialized cell population synchronizes
// its pulse clock (the biological premise: no coordinated initialization).
func TestSynchronizeFromScratch(t *testing.T) {
	n, err := bio.NewNetwork(bio.Config{Cells: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunUntilSynchronized(maxRounds(n)); err != nil {
		t.Fatalf("population did not synchronize: %v", err)
	}
	if !n.Synchronized() {
		t.Fatal("Synchronized() inconsistent")
	}
	// All phases are valid clock values after synchronization.
	for v, p := range n.Phases() {
		if p < 0 {
			t.Errorf("cell %d still in a faulty turn", v)
		}
	}
	// Every cell keeps pulsing.
	counts, err := n.PulseCounts(30)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range counts {
		if c == 0 {
			t.Errorf("cell %d did not pulse in 30 rounds", v)
		}
	}
}

// TestRecoveryFromEnvironmentalShocks: repeated fault bursts, each recovered
// from (experiment E7's unit-scale version).
func TestRecoveryFromEnvironmentalShocks(t *testing.T) {
	n, err := bio.NewNetwork(bio.Config{Cells: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunUntilSynchronized(maxRounds(n)); err != nil {
		t.Fatal(err)
	}
	for burst := 0; burst < 4; burst++ {
		if _, err := n.MeasureRecovery(4, maxRounds(n)); err != nil {
			t.Fatalf("burst %d: %v", burst, err)
		}
	}
	if got := len(n.Recoveries()); got != 4 {
		t.Errorf("recorded %d recoveries, want 4", got)
	}
	if _, err := n.PulseCounts(10); err != nil {
		t.Errorf("network should be synchronized after recovery: %v", err)
	}
}

// TestChurnWithinDiameterBound: topology rewiring within the bound is a
// transient disruption the clock survives.
func TestChurnWithinDiameterBound(t *testing.T) {
	n, err := bio.NewNetwork(bio.Config{Cells: 14, EdgeDensity: 0.4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunUntilSynchronized(maxRounds(n)); err != nil {
		t.Fatal(err)
	}
	rewired := 0
	for i := 0; i < 3; i++ {
		ok, err := n.Churn(2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue // no admissible rewiring found this time; fine
		}
		rewired++
		if _, err := n.RunUntilSynchronized(maxRounds(n)); err != nil {
			t.Fatalf("no re-synchronization after churn %d: %v", i, err)
		}
		if n.Graph().Diameter() > n.AU().D() {
			t.Fatal("churn violated the diameter bound")
		}
	}
	t.Logf("%d/3 churn events applied", rewired)
}

// TestPulseCountsRequiresSync: PulseCounts refuses on unsynchronized
// networks.
func TestPulseCountsRequiresSync(t *testing.T) {
	n, err := bio.NewNetwork(bio.Config{Cells: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	n.InjectTransientFaults(10)
	if n.Synchronized() {
		t.Skip("randomly landed synchronized; skip")
	}
	if _, err := n.PulseCounts(5); err == nil {
		t.Error("PulseCounts should fail on unsynchronized network")
	}
}

// TestChurnUsesDeltaPath pins the delta-path rewrite of Churn: the network
// keeps its graph and engine identities across rewirings (topology mutates
// in place instead of rebuilding both), the diameter bound is enforced after
// every successful rewiring, a failed search leaves the edge set untouched,
// and the surviving engine still drives the clock.
func TestChurnUsesDeltaPath(t *testing.T) {
	n, err := bio.NewNetwork(bio.Config{Cells: 16, EdgeDensity: 0.4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g, eng := n.Graph(), n.Engine()
	if _, err := n.RunUntilSynchronized(maxRounds(n)); err != nil {
		t.Fatal(err)
	}
	applied := 0
	for i := 0; i < 8; i++ {
		before := g.Edges()
		ok, err := n.Churn(2)
		if err != nil {
			t.Fatal(err)
		}
		if n.Graph() != g || n.Engine() != eng {
			t.Fatal("Churn replaced the graph or engine instead of mutating in place")
		}
		if !ok {
			after := g.Edges()
			if len(after) != len(before) {
				t.Fatalf("failed churn changed the edge set: %d -> %d edges", len(before), len(after))
			}
			for j := range after {
				if after[j] != before[j] {
					t.Fatalf("failed churn changed the edge set at %d: %v -> %v", j, before[j], after[j])
				}
			}
			continue
		}
		applied++
		if err := g.Validate(); err != nil {
			t.Fatalf("churned topology invalid: %v", err)
		}
		if d := g.Diameter(); d > n.AU().D() {
			t.Fatalf("churn violated the diameter bound: diameter %d > D %d", d, n.AU().D())
		}
		if _, err := n.RunUntilSynchronized(maxRounds(n)); err != nil {
			t.Fatalf("no re-synchronization after in-place churn %d: %v", i, err)
		}
	}
	if applied == 0 {
		t.Skip("no admissible rewiring found for any attempt; diameter/identity checks not exercised")
	}
	t.Logf("%d/8 churn events applied in place", applied)
}
