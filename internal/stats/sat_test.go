package stats_test

import (
	"math"
	"testing"

	"thinunison/internal/stats"
)

func TestSatAdd(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{1, 2, 3},
		{math.MaxInt, 1, math.MaxInt},
		{math.MaxInt - 5, 5, math.MaxInt},
		{math.MaxInt - 5, 6, math.MaxInt},
		{math.MaxInt, math.MaxInt, math.MaxInt},
	}
	for _, c := range cases {
		if got := stats.SatAdd(c.a, c.b); got != c.want {
			t.Errorf("SatAdd(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSatMul(t *testing.T) {
	cases := []struct {
		factors []int
		want    int
	}{
		{nil, 1},
		{[]int{7}, 7},
		{[]int{2, 3, 4}, 24},
		{[]int{0, math.MaxInt}, 0},
		{[]int{math.MaxInt, 2}, math.MaxInt},
		{[]int{1 << 31, 1 << 31, 1 << 31}, math.MaxInt},
		// The cubic budget formula that motivated saturation: k = 3D+2 for
		// a huge diameter bound must clamp, not wrap negative.
		{[]int{60, 3_000_000_007, 3_000_000_007, 3_000_000_007}, math.MaxInt},
	}
	for _, c := range cases {
		if got := stats.SatMul(c.factors...); got != c.want {
			t.Errorf("SatMul(%v) = %d, want %d", c.factors, got, c.want)
		}
	}
}
