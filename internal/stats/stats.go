// Package stats provides the small statistics and reporting toolkit used by
// the experiment harness: summary statistics over round-count samples and
// fixed-width table rendering for the regenerated paper artifacts.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P95    float64
	StdDev float64
}

// Summarize computes summary statistics; it returns a zero Summary for an
// empty sample.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	var sum, sq float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	for _, v := range s {
		sq += (v - mean) * (v - mean)
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		Median: Quantile(s, 0.5),
		P95:    Quantile(s, 0.95),
		StdDev: math.Sqrt(sq / float64(len(s))),
	}
}

// SummarizeInts is Summarize over integer samples.
func SummarizeInts(sample []int) Summary {
	f := make([]float64, len(sample))
	for i, v := range sample {
		f[i] = float64(v)
	}
	return Summarize(f)
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already sorted sample
// using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FitPowerLaw fits y ≈ a·x^b by least squares in log-log space and returns
// the exponent b and the coefficient a. It is used to check growth shapes
// (e.g. AU stabilization vs D should have exponent <= 3). Points with
// non-positive coordinates are skipped; fitting needs at least two usable
// points, otherwise ok is false.
func FitPowerLaw(xs, ys []float64) (a, b float64, ok bool) {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return 0, 0, false
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	n := float64(len(lx))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, false
	}
	b = (n*sxy - sx*sy) / den
	a = math.Exp((sy - b*sx) / n)
	return a, b, true
}

// Table is a fixed-width text table with a title, used for all experiment
// reports.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// Render returns the table as fixed-width text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SatAdd returns a+b, saturating at math.MaxInt instead of overflowing.
// Operands must be non-negative; budget formulas are.
func SatAdd(a, b int) int {
	if a > math.MaxInt-b {
		return math.MaxInt
	}
	return a + b
}

// SatMul returns the product of its operands, saturating at math.MaxInt.
// Operands must be non-negative. It keeps the cubic round-budget formulas
// (60k³ + 500, 3000(D+log n)log n + 5000) well defined for huge D instead of
// wrapping negative and disabling the budget check.
func SatMul(factors ...int) int {
	out := 1
	for _, f := range factors {
		if f != 0 && out > math.MaxInt/f {
			return math.MaxInt
		}
		out *= f
	}
	return out
}

// Log2 returns ceil(log2(n)) for n >= 1 (a convenience for budget
// formulas).
func Log2(n int) int {
	l := 0
	for v := n - 1; v > 0; v >>= 1 {
		l++
	}
	if l == 0 {
		return 1
	}
	return l
}
