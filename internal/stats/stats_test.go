package stats_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"thinunison/internal/stats"
)

func TestSummarize(t *testing.T) {
	s := stats.Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.StdDev < 1.41 || s.StdDev > 1.42 {
		t.Errorf("StdDev = %v, want ~1.414", s.StdDev)
	}
	if z := stats.Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	i := stats.SummarizeInts([]int{10, 20})
	if i.Mean != 15 {
		t.Errorf("SummarizeInts mean = %v", i.Mean)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3.0, 2},
	}
	for _, c := range cases {
		if got := stats.Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if stats.Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	if stats.Quantile([]float64{7}, 0.9) != 7 {
		t.Error("singleton quantile")
	}
}

// TestSummaryOrderingProperty: Min <= Median <= Max and Min <= Mean <= Max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		// The package is used on round counts; restrict to magnitudes where
		// the sample sum cannot overflow.
		var clean []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := stats.Summarize(clean)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Median <= s.P95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFitPowerLaw(t *testing.T) {
	// y = 2 x^3 exactly.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 * x * x * x
	}
	a, b, ok := stats.FitPowerLaw(xs, ys)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(b-3) > 1e-9 || math.Abs(a-2) > 1e-9 {
		t.Errorf("fit = %v * x^%v, want 2 * x^3", a, b)
	}
	// Degenerate inputs.
	if _, _, ok := stats.FitPowerLaw([]float64{1}, []float64{1}); ok {
		t.Error("single point should not fit")
	}
	if _, _, ok := stats.FitPowerLaw([]float64{-1, 0}, []float64{1, 2}); ok {
		t.Error("non-positive xs should not fit")
	}
	if _, _, ok := stats.FitPowerLaw([]float64{2, 2}, []float64{1, 5}); ok {
		t.Error("identical xs should not fit (vertical line)")
	}
}

func TestTableRender(t *testing.T) {
	tb := stats.NewTable("Title here", "col", "value")
	tb.AddRow("a", 1)
	tb.AddRow("bcd", 2.5)
	tb.AddRow("e", 3.0)
	out := tb.Render()
	for _, want := range []string{"Title here", "col", "value", "bcd", "2.50", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Whole floats render without decimals.
	if !strings.Contains(out, "3") || strings.Contains(out, "3.00") {
		t.Errorf("whole float should render as integer:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestLog2(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := stats.Log2(c.n); got != c.want {
			t.Errorf("Log2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestQuantileEdgeCases pins the empty, single-sample, extreme-q and
// interpolation behavior of Quantile.
func TestQuantileEdgeCases(t *testing.T) {
	if got := stats.Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty sample: %v, want 0", got)
	}
	if got := stats.Quantile([]float64{42}, 0); got != 42 {
		t.Errorf("single sample q=0: %v, want 42", got)
	}
	if got := stats.Quantile([]float64{42}, 1); got != 42 {
		t.Errorf("single sample q=1: %v, want 42", got)
	}
	sorted := []float64{1, 2, 3, 4}
	if got := stats.Quantile(sorted, 0); got != 1 {
		t.Errorf("q=0: %v, want the minimum 1", got)
	}
	if got := stats.Quantile(sorted, 1); got != 4 {
		t.Errorf("q=1: %v, want the maximum 4", got)
	}
	if got := stats.Quantile(sorted, 0.5); got != 2.5 {
		t.Errorf("q=0.5: %v, want interpolated 2.5", got)
	}
	if got := stats.Quantile([]float64{10, 20}, 0.25); got != 12.5 {
		t.Errorf("q=0.25 over [10,20]: %v, want 12.5", got)
	}
	// Exact grid point: no interpolation.
	if got := stats.Quantile([]float64{1, 2, 3}, 0.5); got != 2 {
		t.Errorf("q=0.5 over [1,2,3]: %v, want 2", got)
	}
}

// TestSummarizeEdgeCases pins Summarize on empty and single samples.
func TestSummarizeEdgeCases(t *testing.T) {
	if z := stats.Summarize(nil); z != (stats.Summary{}) {
		t.Errorf("empty sample: %+v, want the zero Summary", z)
	}
	s := stats.Summarize([]float64{7})
	if s.N != 1 || s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Median != 7 || s.P95 != 7 {
		t.Errorf("single sample: %+v, want all order statistics equal 7", s)
	}
	if s.StdDev != 0 {
		t.Errorf("single sample StdDev = %v, want 0", s.StdDev)
	}
	// Summarize must not mutate its input.
	in := []float64{3, 1, 2}
	stats.Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}
