// Package frontier provides the dirty-node set behind frontier-sparse
// execution: a bitset over the node IDs of a graph tracking which nodes are
// *unsettled* — nodes whose next activation might do something, because
// their state or a neighbor's state changed since they were last certified
// as a deterministic self-loop.
//
// The set is laid out as one word array per contiguous node shard (the
// partition of internal/shard), so concurrent workers that only touch nodes
// of distinct shards never share a word: no atomics, no false sharing, and
// the sharded engines' determinism argument stays purely structural. A
// single-shard set (New) is the sequential special case of the same layout.
//
// Enumeration (AppendTo, AppendRange) yields members in ascending node
// order, which is exactly the canonical activation order the simulation
// engines' observer contract is anchored on.
package frontier

import "math/bits"

// Set is a dirty-node set over [0, n). The zero value is not usable; build
// one with New or NewSharded.
//
// Concurrency contract: calls touching nodes of distinct shards may run
// concurrently (each shard has its own word array and cardinality slot);
// calls touching the same shard must be serialized by the caller. Len and
// the enumeration methods require exclusive access to the whole set.
type Set struct {
	n       int
	starts  []int      // len P+1; shard s owns nodes [starts[s], starts[s+1])
	shardOf []int32    // owner shard per node; nil means single shard
	words   [][]uint64 // per shard, bit (v - starts[s])
	count   []int      // per-shard cardinality
}

// New returns an empty set over [0, n) with a single shard.
func New(n int) *Set {
	return NewSharded(n, []int{0, n}, nil)
}

// NewSharded returns an empty set over [0, n) partitioned by starts (the
// contiguous shard bounds of a shard.Partition, len P+1 with starts[0] = 0
// and starts[P] = n). shardOf is the dense owner-shard table; it may be nil
// when len(starts) == 2 (single shard). Both slices are retained, not
// copied; they are owned by the partition and never mutated.
func NewSharded(n int, starts []int, shardOf []int32) *Set {
	p := len(starts) - 1
	s := &Set{
		n:       n,
		starts:  starts,
		shardOf: shardOf,
		words:   make([][]uint64, p),
		count:   make([]int, p),
	}
	for sh := 0; sh < p; sh++ {
		s.words[sh] = make([]uint64, (starts[sh+1]-starts[sh]+63)/64)
	}
	return s
}

// N returns the size of the node domain.
func (s *Set) N() int { return s.n }

// shard returns the owner shard of node v.
func (s *Set) shard(v int) int {
	if s.shardOf == nil {
		return 0
	}
	return int(s.shardOf[v])
}

// Add inserts node v (a no-op if already present).
func (s *Set) Add(v int) {
	sh := s.shard(v)
	i := v - s.starts[sh]
	w, b := i>>6, uint64(1)<<uint(i&63)
	if s.words[sh][w]&b == 0 {
		s.words[sh][w] |= b
		s.count[sh]++
	}
}

// Remove deletes node v (a no-op if absent).
func (s *Set) Remove(v int) {
	sh := s.shard(v)
	i := v - s.starts[sh]
	w, b := i>>6, uint64(1)<<uint(i&63)
	if s.words[sh][w]&b != 0 {
		s.words[sh][w] &^= b
		s.count[sh]--
	}
}

// Contains reports whether node v is in the set.
func (s *Set) Contains(v int) bool {
	sh := s.shard(v)
	i := v - s.starts[sh]
	return s.words[sh][i>>6]&(1<<uint(i&63)) != 0
}

// Len returns the cardinality, combining the per-shard counts in O(P).
func (s *Set) Len() int {
	total := 0
	for _, c := range s.count {
		total += c
	}
	return total
}

// Fill inserts every node of the domain.
func (s *Set) Fill() {
	for sh := range s.words {
		lo, hi := s.starts[sh], s.starts[sh+1]
		ws := s.words[sh]
		for i := range ws {
			ws[i] = ^uint64(0)
		}
		if tail := (hi - lo) & 63; tail != 0 {
			ws[len(ws)-1] = (uint64(1) << uint(tail)) - 1
		}
		s.count[sh] = hi - lo
	}
}

// Rebuild returns a new set over the same node domain, laid out for the
// given shard bounds (see NewSharded) and containing this set's members.
// The sharded engines use it to migrate the dirty bits onto a fresh
// partition after a churn-triggered repartition.
func (s *Set) Rebuild(starts []int, shardOf []int32) *Set {
	next := NewSharded(s.n, starts, shardOf)
	for _, v := range s.AppendTo(nil) {
		next.Add(v)
	}
	return next
}

// AppendTo appends all members to buf in ascending node order and returns
// the extended slice. The scan costs O(n/64 + |members|) regardless of
// occupancy, which is negligible next to even one skipped signal
// computation per word.
func (s *Set) AppendTo(buf []int) []int {
	for sh := range s.words {
		if s.count[sh] == 0 {
			continue
		}
		buf = s.appendShard(buf, sh, s.starts[sh], s.starts[sh+1])
	}
	return buf
}

// AppendRange appends the members within [lo, hi) to buf in ascending node
// order. The sharded engines use it with their own shard's bounds, so each
// worker enumerates exactly the frontier slice it owns.
func (s *Set) AppendRange(buf []int, lo, hi int) []int {
	for sh := range s.words {
		slo, shi := s.starts[sh], s.starts[sh+1]
		if shi <= lo || slo >= hi {
			continue
		}
		clo, chi := slo, shi
		if clo < lo {
			clo = lo
		}
		if chi > hi {
			chi = hi
		}
		buf = s.appendShard(buf, sh, clo, chi)
	}
	return buf
}

// appendShard appends shard sh's members within [lo, hi) (absolute node
// IDs, both inside the shard's range).
func (s *Set) appendShard(buf []int, sh, lo, hi int) []int {
	base := s.starts[sh]
	ws := s.words[sh]
	for wi := (lo - base) >> 6; wi <= (hi-base-1)>>6 && wi < len(ws); wi++ {
		w := ws[wi]
		for w != 0 {
			v := base + wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if v < lo {
				continue
			}
			if v >= hi {
				return buf
			}
			buf = append(buf, v)
		}
	}
	return buf
}
