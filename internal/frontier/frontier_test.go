package frontier

import (
	"math/rand"
	"testing"
)

// reference is the oracle: a plain boolean membership table.
type reference struct {
	in []bool
	n  int
}

func (r *reference) apply(op int, v int) {
	switch op {
	case 0:
		r.in[v] = true
	case 1:
		r.in[v] = false
	}
}

func (r *reference) members(lo, hi int) []int {
	var out []int
	for v := lo; v < hi; v++ {
		if r.in[v] {
			out = append(out, v)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSetAgainstReference drives random Add/Remove sequences against the
// oracle over single-shard and multi-shard layouts (including shard bounds
// that are not word-aligned, the case the per-shard word arrays exist for),
// checking Contains, Len, AppendTo and AppendRange after every operation
// batch.
func TestSetAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	layouts := map[string]func(n int) *Set{
		"single": New,
		"sharded": func(n int) *Set {
			// Deliberately odd cuts: 3 shards at ragged offsets.
			starts := []int{0, n/3 + 1, 2*n/3 - 1, n}
			shardOf := make([]int32, n)
			for v := range shardOf {
				switch {
				case v < starts[1]:
					shardOf[v] = 0
				case v < starts[2]:
					shardOf[v] = 1
				default:
					shardOf[v] = 2
				}
			}
			return NewSharded(n, starts, shardOf)
		},
	}
	for name, mk := range layouts {
		for _, n := range []int{5, 64, 129, 200} {
			s := mk(n)
			ref := &reference{in: make([]bool, n), n: n}
			for batch := 0; batch < 50; batch++ {
				for i := 0; i < 20; i++ {
					op, v := rng.Intn(2), rng.Intn(n)
					s.apply(op, v)
					ref.apply(op, v)
				}
				if s.Len() != len(ref.members(0, n)) {
					t.Fatalf("%s n=%d: Len = %d, want %d", name, n, s.Len(), len(ref.members(0, n)))
				}
				for v := 0; v < n; v++ {
					if s.Contains(v) != ref.in[v] {
						t.Fatalf("%s n=%d: Contains(%d) = %v, want %v", name, n, v, s.Contains(v), ref.in[v])
					}
				}
				if got, want := s.AppendTo(nil), ref.members(0, n); !equalInts(got, want) {
					t.Fatalf("%s n=%d: AppendTo = %v, want %v", name, n, got, want)
				}
				lo := rng.Intn(n)
				hi := lo + rng.Intn(n-lo+1)
				if got, want := s.AppendRange(nil, lo, hi), ref.members(lo, hi); !equalInts(got, want) {
					t.Fatalf("%s n=%d: AppendRange(%d,%d) = %v, want %v", name, n, lo, hi, got, want)
				}
			}
		}
	}
}

func (s *Set) apply(op, v int) {
	if op == 0 {
		s.Add(v)
	} else {
		s.Remove(v)
	}
}

// TestFill: Fill marks the whole domain, including ragged tail words.
func TestFill(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		s := New(n)
		s.Fill()
		if s.Len() != n {
			t.Fatalf("n=%d: Len after Fill = %d", n, s.Len())
		}
		got := s.AppendTo(nil)
		if len(got) != n {
			t.Fatalf("n=%d: AppendTo after Fill returned %d members", n, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("n=%d: member %d = %d", n, i, v)
			}
		}
		s.Remove(n - 1)
		if s.Len() != n-1 || s.Contains(n-1) {
			t.Fatalf("n=%d: Remove after Fill failed", n)
		}
	}
}

// TestIdempotence: double Add / double Remove must not skew the count.
func TestIdempotence(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Len() != 1 {
		t.Fatalf("Len after double Add = %d", s.Len())
	}
	s.Remove(3)
	s.Remove(3)
	if s.Len() != 0 {
		t.Fatalf("Len after double Remove = %d", s.Len())
	}
}
