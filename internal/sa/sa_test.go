package sa_test

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"thinunison/internal/sa"
)

func TestSignalBasicOps(t *testing.T) {
	s := sa.NewSignal(130) // spans three words
	for _, q := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(q) {
			t.Errorf("fresh signal has bit %d", q)
		}
		s.Set(q)
		if !s.Has(q) {
			t.Errorf("Set(%d) not visible", q)
		}
	}
	if got := s.Count(); got != 8 {
		t.Errorf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Has(64) {
		t.Error("Clear(64) not effective")
	}
	s.Reset()
	if s.Count() != 0 {
		t.Error("Reset not effective")
	}
}

func TestSignalStatesSorted(t *testing.T) {
	s := sa.NewSignal(100)
	want := []int{3, 17, 64, 99, 0}
	for _, q := range want {
		s.Set(q)
	}
	sort.Ints(want)
	got := s.States()
	if len(got) != len(want) {
		t.Fatalf("States() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("States() = %v, want %v", got, want)
		}
	}
}

func TestSignalSubsetOf(t *testing.T) {
	s := sa.NewSignal(70)
	s.Set(1)
	s.Set(65)
	if !s.SubsetOf(1, 65, 3) {
		t.Error("subset should hold")
	}
	if s.SubsetOf(1, 3) {
		t.Error("subset should fail: 65 not allowed")
	}
	empty := sa.NewSignal(70)
	if !empty.SubsetOf() {
		t.Error("empty signal is a subset of anything")
	}
	if !s.HasAny(99, 65) {
		t.Error("HasAny should find 65")
	}
	if s.HasAny(2, 3) {
		t.Error("HasAny false positive")
	}
}

func TestSignalEqualClone(t *testing.T) {
	a := sa.NewSignal(64)
	b := sa.NewSignal(64)
	a.Set(5)
	if a.Equal(b) {
		t.Error("different signals equal")
	}
	b.Set(5)
	if !a.Equal(b) {
		t.Error("identical signals unequal")
	}
	c := a.Clone()
	if !c.Equal(a) {
		t.Error("clone differs")
	}
	c.Set(6)
	if a.Has(6) {
		t.Error("clone shares storage with original")
	}
	if a.Equal(sa.NewSignal(128)) {
		t.Error("different-size signals should not be equal")
	}
}

// TestSignalSetHasProperty: after setting an arbitrary subset, Has agrees
// with membership and States round-trips.
func TestSignalSetHasProperty(t *testing.T) {
	f := func(qsRaw []uint16) bool {
		const n = 300
		s := sa.NewSignal(n)
		set := map[int]bool{}
		for _, q := range qsRaw {
			v := int(q) % n
			s.Set(v)
			set[v] = true
		}
		for q := 0; q < n; q++ {
			if s.Has(q) != set[q] {
				return false
			}
		}
		states := s.States()
		if len(states) != len(set) || s.Count() != len(set) {
			return false
		}
		for _, q := range states {
			if !set[q] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConfigHelpers(t *testing.T) {
	c := sa.Uniform(4, 7)
	for _, q := range c {
		if q != 7 {
			t.Fatal("Uniform broken")
		}
	}
	d := c.Clone()
	d[0] = 1
	if c[0] != 7 {
		t.Error("Clone shares storage")
	}
	if c.Equal(d) {
		t.Error("Equal false positive")
	}
	if !c.Equal(sa.Uniform(4, 7)) {
		t.Error("Equal false negative")
	}
	if c.Equal(sa.Uniform(5, 7)) {
		t.Error("length mismatch should be unequal")
	}
	rng := rand.New(rand.NewSource(1))
	r := sa.Random(100, 9, rng)
	for _, q := range r {
		if q < 0 || q >= 9 {
			t.Fatalf("Random out of range: %d", q)
		}
	}
}

// parityAlg is a minimal test Algorithm: states {0,1}, output = state,
// transition flips when sensing the other parity.
type parityAlg struct{}

func (parityAlg) NumStates() int      { return 2 }
func (parityAlg) IsOutput(q int) bool { return q == 1 }
func (parityAlg) Output(q int) int    { return q }
func (parityAlg) Transition(q int, sig sa.Signal, _ *rand.Rand) int {
	if sig.Has(1 - q) {
		return 1 - q
	}
	return q
}

func TestIsOutputConfigAndString(t *testing.T) {
	alg := parityAlg{}
	if !sa.Uniform(3, 1).IsOutputConfig(alg) {
		t.Error("all-1 config should be output config")
	}
	if (sa.Config{1, 0, 1}).IsOutputConfig(alg) {
		t.Error("config containing 0 is not an output config")
	}
	if s := (sa.Config{0, 1}).String(alg); s != "[q0 q1]" {
		t.Errorf("String = %q", s)
	}
	if got := sa.StateName(alg, 0); got != "q0" {
		t.Errorf("StateName = %q", got)
	}
}
