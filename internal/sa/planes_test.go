package sa_test

import (
	"math/rand"
	"testing"

	"thinunison/internal/sa"
)

// planeSizes pins the word boundaries the codec must survive: state spaces
// of 63, 64 and 65 states straddle the one-word signal limit, and node
// counts of 63, 64, 65 and 130 straddle the plane-word boundaries.
var planeStateSizes = []int{1, 2, 3, 63, 64, 65, 100}
var planeNodeSizes = []int{0, 1, 2, 63, 64, 65, 130}

func TestPlanesPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, states := range planeStateSizes {
		for _, n := range planeNodeSizes {
			cfg := sa.Random(n, states, rng)
			p := sa.NewPlanes(n, states)
			p.Pack(cfg)
			got := make(sa.Config, n)
			p.Unpack(got)
			if !got.Equal(cfg) {
				t.Fatalf("states=%d n=%d: Pack∘Unpack not identity:\nwant %v\ngot  %v", states, n, cfg, got)
			}
			for v := range cfg {
				if p.Get(v) != cfg[v] {
					t.Fatalf("states=%d n=%d: Get(%d) = %d, want %d", states, n, v, p.Get(v), cfg[v])
				}
			}
		}
	}
}

func TestPlanesSetTracksScalarShadow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, states := range []int{63, 64, 65} {
		n := 130
		shadow := sa.Random(n, states, rng)
		p := sa.NewPlanes(n, states)
		p.Pack(shadow)
		for i := 0; i < 2000; i++ {
			v, q := rng.Intn(n), rng.Intn(states)
			shadow[v] = q
			p.Set(v, q)
			if p.Get(v) != q {
				t.Fatalf("states=%d: Set/Get mismatch at node %d", states, v)
			}
		}
		got := make(sa.Config, n)
		p.Unpack(got)
		if !got.Equal(shadow) {
			t.Fatalf("states=%d: planes diverged from scalar shadow after random Sets", states)
		}
	}
}

func TestPlanesGEMaskMatchesScalarPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, states := range []int{63, 64, 65} {
		for _, n := range []int{1, 64, 65, 130} {
			cfg := sa.Random(n, states, rng)
			p := sa.NewPlanes(n, states)
			p.Pack(cfg)
			dst := make([]uint64, p.Words())
			for _, q := range []int{0, 1, states / 2, states - 1} {
				p.GEMask(q, dst)
				for v := 0; v < n; v++ {
					want := cfg[v] >= q
					got := dst[v>>6]>>uint(v&63)&1 != 0
					if got != want {
						t.Fatalf("states=%d n=%d q=%d: GEMask bit for node %d (state %d) = %v, want %v",
							states, n, q, v, cfg[v], got, want)
					}
				}
				// Tail bits beyond node n−1 must be masked off.
				if tail := uint(n & 63); tail != 0 {
					if dst[p.Words()-1]&^((1<<tail)-1) != 0 {
						t.Fatalf("states=%d n=%d q=%d: GEMask left tail bits set", states, n, q)
					}
				}
			}
		}
	}
}

func TestPlanesSelfWords(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, states := range []int{1, 2, 63, 64} {
		n := 130
		cfg := sa.Random(n, states, rng)
		p := sa.NewPlanes(n, states)
		p.Pack(cfg)
		self := make([]uint64, n)
		p.SelfWords(self)
		for v := range cfg {
			if self[v] != 1<<uint(cfg[v]) {
				t.Fatalf("states=%d: self-word of node %d = %#x, want 1<<%d", states, v, self[v], cfg[v])
			}
		}
	}
}

// TestBuildSignalsMatchesScalarSignal is the property test for the batched
// CSR OR-scan: over random graphs, configurations and node ranges, the
// one-word signals must equal the scalar sa.Signal built the slow way.
func TestBuildSignalsMatchesScalarSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, states := range []int{2, 63, 64} {
		for trial := 0; trial < 30; trial++ {
			n := 1 + rng.Intn(150)
			adj := make([][]int, n)
			for v := 0; v < n; v++ {
				for u := v + 1; u < n; u++ {
					if rng.Float64() < 0.08 {
						adj[v] = append(adj[v], u)
						adj[u] = append(adj[u], v)
					}
				}
			}
			offsets := make([]int, n+1)
			var neighbors []int
			for v := 0; v < n; v++ {
				offsets[v+1] = offsets[v] + len(adj[v])
				neighbors = append(neighbors, adj[v]...)
			}

			cfg := sa.Random(n, states, rng)
			p := sa.NewPlanes(n, states)
			p.Pack(cfg)
			self := make([]uint64, n)
			p.SelfWords(self)

			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo+1)
			sws := make([]uint64, hi-lo)
			sa.BuildSignals(self, offsets, neighbors, lo, hi, sws)

			for v := lo; v < hi; v++ {
				sig := sa.NewSignal(states)
				sig.Set(cfg[v])
				for _, u := range adj[v] {
					sig.Set(cfg[u])
				}
				if sws[v-lo] != sig.Words()[0] {
					t.Fatalf("states=%d trial=%d: signal word of node %d = %#x, scalar %#x",
						states, trial, v, sws[v-lo], sig.Words()[0])
				}
			}
		}
	}
}

// FuzzPlanesCodec drives the codec with arbitrary byte strings interpreted
// as configurations over the 63/64/65-state boundary spaces and checks the
// round-trip identity plus Get agreement.
func FuzzPlanesCodec(f *testing.F) {
	f.Add([]byte{0, 1, 62, 63}, uint8(0))
	f.Add([]byte{63}, uint8(1))
	f.Add([]byte{64, 64, 64}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, pick uint8) {
		states := []int{63, 64, 65}[int(pick)%3]
		if len(raw) > 512 {
			raw = raw[:512]
		}
		cfg := make(sa.Config, len(raw))
		for i, b := range raw {
			cfg[i] = int(b) % states
		}
		p := sa.NewPlanes(len(cfg), states)
		p.Pack(cfg)
		got := make(sa.Config, len(cfg))
		p.Unpack(got)
		if !got.Equal(cfg) {
			t.Fatalf("round trip broke at states=%d len=%d", states, len(cfg))
		}
		for v := range cfg {
			if p.Get(v) != cfg[v] {
				t.Fatalf("Get(%d) = %d, want %d", v, p.Get(v), cfg[v])
			}
		}
	})
}

// TestSubsetOfAllocs pins the guard-evaluation path: SubsetOf must not
// allocate, even for multi-word signals.
func TestSubsetOfAllocs(t *testing.T) {
	sig := sa.NewSignal(130)
	sig.Set(3)
	sig.Set(70)
	sig.Set(129)
	allowed := []sa.State{3, 70, 129}
	allocs := testing.AllocsPerRun(200, func() {
		if !sig.SubsetOf(allowed...) {
			t.Fatal("subset check failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Signal.SubsetOf allocates %v times per call, want 0", allocs)
	}
}
