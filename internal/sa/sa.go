// Package sa defines the simplified stone age (SA) computational model of
// Emek & Keren (PODC 2021), itself a restriction of the stone age model of
// Emek & Wattenhofer (PODC 2013).
//
// An algorithm is a 4-tuple Π = ⟨Q, Q_O, ω, δ⟩ over a fixed finite state set
// Q. Nodes are anonymous randomized finite state machines; a node senses, for
// every state q ∈ Q, whether q appears in its inclusive neighborhood (the
// "signal", a bit vector over Q — no counting, no identities, no collision
// detection). When activated, a node draws its next state uniformly from
// δ(q, signal).
//
// States are represented as dense integers in [0, NumStates). Signals are
// bitsets over the state set.
package sa

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
)

// State is a node state: a dense integer in [0, Algorithm.NumStates()).
type State = int

// Signal is the sensing bit vector of a node: bit q is set iff some node in
// the inclusive neighborhood resides in state q. Signals deliberately expose
// only set semantics — SA nodes cannot count occurrences or tell neighbors
// apart.
type Signal struct {
	bits []uint64
}

// NewSignal returns an empty signal over a state space of the given size.
func NewSignal(numStates int) Signal {
	return Signal{bits: make([]uint64, (numStates+63)/64)}
}

// Set marks state q as sensed.
func (s Signal) Set(q State) { s.bits[q>>6] |= 1 << uint(q&63) }

// Clear unmarks state q.
func (s Signal) Clear(q State) { s.bits[q>>6] &^= 1 << uint(q&63) }

// Has reports whether state q is sensed.
func (s Signal) Has(q State) bool { return s.bits[q>>6]&(1<<uint(q&63)) != 0 }

// Reset clears all bits, reusing the underlying storage.
func (s Signal) Reset() {
	for i := range s.bits {
		s.bits[i] = 0
	}
}

// HasAny reports whether any of the given states is sensed.
func (s Signal) HasAny(qs ...State) bool {
	for _, q := range qs {
		if s.Has(q) {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every sensed state is among the allowed states.
// It is the Λ ⊆ {...} test that the AlgAU transition conditions are phrased
// in. The allowed list is expected to be tiny (2-3 states); the mask is
// rebuilt per word on the fly so the call performs no allocation — it sits
// on the guard-evaluation path.
func (s Signal) SubsetOf(allowed ...State) bool {
	for i, w := range s.bits {
		if w == 0 {
			continue
		}
		var mask uint64
		for _, q := range allowed {
			if q>>6 == i {
				mask |= 1 << uint(q&63)
			}
		}
		if w&^mask != 0 {
			return false
		}
	}
	return true
}

// States returns the sorted list of sensed states (for tests and traces).
func (s Signal) States() []State {
	var out []State
	for i, w := range s.bits {
		for w != 0 {
			q := i*64 + bits.TrailingZeros64(w)
			out = append(out, q)
			w &= w - 1
		}
	}
	return out
}

// Count returns the number of sensed states.
func (s Signal) Count() int {
	n := 0
	for _, w := range s.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether two signals over the same state space are identical.
func (s Signal) Equal(t Signal) bool {
	if len(s.bits) != len(t.bits) {
		return false
	}
	for i := range s.bits {
		if s.bits[i] != t.bits[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the signal.
func (s Signal) Clone() Signal {
	out := Signal{bits: make([]uint64, len(s.bits))}
	copy(out.bits, s.bits)
	return out
}

// Words exposes the signal's backing bit words (bit q of word q/64 = state q
// sensed). The slice is the live storage, not a copy; callers must treat it
// as read-only. It is what lets precompiled transition tables and the
// word-parallel kernels test whole signals with a handful of word ops
// instead of per-state Has probes.
func (s Signal) Words() []uint64 { return s.bits }

// Algorithm is a stone age algorithm Π = ⟨Q, Q_O, ω, δ⟩.
//
// Implementations must be deterministic functions of (state, signal, the rng
// stream): all nodes obey the same transition function, and the adversarial
// scheduler is oblivious to the coin tosses.
type Algorithm interface {
	// NumStates returns |Q|. States are 0..NumStates()-1.
	NumStates() int

	// IsOutput reports whether q ∈ Q_O.
	IsOutput(q State) bool

	// Output returns ω(q) for an output state q. The result is
	// task-specific (an AU clock value, a 0/1 LE or MIS mark, ...).
	// It must only be called with IsOutput(q) == true.
	Output(q State) int

	// Transition implements δ: it returns the next state of a node
	// residing in state q that senses the given signal, drawing any random
	// choice from rng. Deterministic algorithms ignore rng. Returning q
	// means the node keeps its state.
	Transition(q State, sig Signal, rng *rand.Rand) State
}

// SelfLooper is an optional extension of Algorithm enabling frontier-sparse
// execution: SelfLoop(q, sig) reports whether δ(q, sig) is deterministically
// the self-loop {q} with no coin toss. Activating such a node provably
// leaves both the configuration and the rng stream untouched, so an engine
// may skip it wholesale — without perturbing the shared coin-toss stream of
// a classic sequential run — until its own state or a neighbor's state
// changes and the pair (q, sig) must be re-certified.
//
// Implementations must be sound: a true verdict for (q, sig) asserts that
// Transition(q, sig, rng) returns q and draws nothing from rng, for every
// rng. False negatives merely cost performance; a false positive breaks the
// frontier/classic equivalence the differential harness enforces.
type SelfLooper interface {
	SelfLoop(q State, sig Signal) bool
}

// Settler is an optional refinement of SelfLooper for algorithms that can
// report the self-loop certificate together with the transition itself —
// one δ evaluation instead of two on no-op steps, which is what the
// frontier engines' certification path uses when available.
type Settler interface {
	SelfLooper
	// TransitionSettled is Transition plus the SelfLoop verdict of (q, sig):
	// settled reports that δ(q, sig) is deterministically {q} with no coin
	// toss (it implies next == q).
	TransitionSettled(q State, sig Signal, rng *rand.Rand) (next State, settled bool)
}

// WordEval is a batch evaluator over one-word signals: for a state space of
// at most 64 states a whole signal fits in a single uint64 (bit q set iff
// state q is sensed), so δ can be evaluated with a handful of word ops per
// node from precompiled masks instead of per-state probes and branchy
// decoding. Engines obtain one via the WordKernel capability and feed it
// batches built by the CSR OR-scan over per-node self-words (see Planes).
//
// The contract mirrors sa.Settler, strengthened to batches: implementations
// must be deterministic and coin-free on every (state, signal) pair — Eval
// draws nothing from any rng stream, and next[i] == cur[i] certifies that
// δ(cur[i], sws[i]) is the self-loop {cur[i]}, so equality doubles as the
// settled certificate frontier-sparse execution needs. A verdict that
// disagrees with Algorithm.Transition breaks the word/scalar byte-identity
// the differential harnesses enforce.
type WordEval interface {
	// Eval computes next[i] = δ(cur[i], sws[i]) for every slot of the batch.
	// len(sws) and len(next) must equal len(cur); slices may alias only as
	// cur == next. It must not allocate.
	Eval(cur []State, sws []uint64, next []State)

	// EvalGood is Eval fused with the algorithm's local legitimacy predicate
	// (for AlgAU: the good-node predicate — able, no faulty turn sensed, all
	// sensed levels adjacent): bit i of good (good[i>>6], bit i&63) is set
	// iff slot i satisfies the predicate under (cur[i], sws[i]). good must
	// have (len(cur)+63)/64 words; every touched word is fully overwritten,
	// with tail bits beyond the batch set to 1 so an all-good batch reads as
	// all-ones. Engines maintain a goodness bit-plane from these words and
	// derive graph-wide stabilization verdicts by popcount instead of
	// per-node monitor callbacks.
	EvalGood(cur []State, sws []uint64, next []State, good []uint64)
}

// WordKernel is an optional extension of Algorithm enabling word-parallel
// execution (sim.Options.WordParallel): algorithms whose state space fits in
// a machine word can hand the engines a batch evaluator. Kernel returns nil
// when no kernel is available (NumStates() > 64, or a variant the tables
// cannot express); engines silently fall back to the scalar path, exactly
// like the SelfLooper fallback of frontier-sparse mode.
type WordKernel interface {
	Kernel() WordEval
}

// Namer is an optional extension of Algorithm providing human-readable state
// names for traces, diagrams and error messages.
type Namer interface {
	StateName(q State) string
}

// StateName renders state q of alg, using Namer if available.
func StateName(alg Algorithm, q State) string {
	if n, ok := alg.(Namer); ok {
		return n.StateName(q)
	}
	return fmt.Sprintf("q%d", q)
}

// Config is a configuration C : V → Q, stored densely by NodeID.
type Config []State

// Clone returns a deep copy of the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Equal reports whether two configurations are identical.
func (c Config) Equal(d Config) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Uniform returns a configuration assigning state q to all n nodes.
func Uniform(n int, q State) Config {
	c := make(Config, n)
	for i := range c {
		c[i] = q
	}
	return c
}

// Random returns a configuration drawing each node's state uniformly from
// [0, numStates). This is the standard adversarial-initialization proxy for
// self-stabilization experiments.
func Random(n, numStates int, rng *rand.Rand) Config {
	c := make(Config, n)
	for i := range c {
		c[i] = rng.Intn(numStates)
	}
	return c
}

// IsOutputConfig reports whether every node resides in an output state.
func (c Config) IsOutputConfig(alg Algorithm) bool {
	for _, q := range c {
		if !alg.IsOutput(q) {
			return false
		}
	}
	return true
}

// String renders the configuration with the algorithm's state names.
func (c Config) String(alg Algorithm) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, q := range c {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(StateName(alg, q))
	}
	b.WriteByte(']')
	return b.String()
}
