package sa

import "math/bits"

// Planes is a struct-of-arrays bit-plane configuration: plane b holds bit b
// of every node's state, packed 64 nodes per uint64, so a configuration over
// |Q| states needs ⌈log2 |Q|⌉ plane slices instead of an 8-byte scalar per
// node. Word-parallel engines use it as the transposed view of sa.Config:
// settled checks, frontier intersection and good-graph violation masks all
// become whole-word AND/OR/popcount passes evaluating 64 nodes per op.
//
// The codec is exact for any |Q| (the round-trip Pack∘Unpack is the
// identity; the fuzz tests pin the 63/64/65-state word boundaries), and the
// derived-plane helpers (GEMask, SelfWords) produce the faulty plane and the
// per-node self-words the batched signal builder consumes.
type Planes struct {
	n      int
	states int
	width  int // ⌈log2 states⌉, at least 1
	words  int // words per plane = ⌈n/64⌉
	planes [][]uint64
}

// PlaneWords returns the number of uint64 words a single bit-plane over n
// nodes occupies.
func PlaneWords(n int) int { return (n + 63) / 64 }

// planeWidth returns ⌈log2 numStates⌉, the number of planes needed to encode
// states 0..numStates−1; a degenerate 1-state space still gets one plane.
func planeWidth(numStates int) int {
	w := bits.Len(uint(numStates - 1))
	if w == 0 {
		w = 1
	}
	return w
}

// NewPlanes returns an all-zero (every node in state 0) bit-plane
// configuration for n nodes over numStates states.
func NewPlanes(n, numStates int) *Planes {
	if n < 0 || numStates < 1 {
		panic("sa: NewPlanes requires n >= 0 and numStates >= 1")
	}
	p := &Planes{
		n:      n,
		states: numStates,
		width:  planeWidth(numStates),
		words:  PlaneWords(n),
	}
	p.planes = make([][]uint64, p.width)
	for b := range p.planes {
		p.planes[b] = make([]uint64, p.words)
	}
	return p
}

// N returns the number of nodes.
func (p *Planes) N() int { return p.n }

// NumStates returns the size of the encoded state space.
func (p *Planes) NumStates() int { return p.states }

// Width returns the number of bit-planes, ⌈log2 NumStates()⌉.
func (p *Planes) Width() int { return p.width }

// Words returns the number of uint64 words per plane.
func (p *Planes) Words() int { return p.words }

// Plane returns bit-plane b (the live storage, 64 nodes per word). Callers
// mutating it directly own the encoding invariants.
func (p *Planes) Plane(b int) []uint64 { return p.planes[b] }

// Pack encodes a scalar configuration into the planes. len(c) must equal N().
func (p *Planes) Pack(c Config) {
	if len(c) != p.n {
		panic("sa: Planes.Pack configuration length mismatch")
	}
	for _, plane := range p.planes {
		for i := range plane {
			plane[i] = 0
		}
	}
	for v, q := range c {
		w, bit := v>>6, uint(v&63)
		for b := 0; b < p.width; b++ {
			if q&(1<<uint(b)) != 0 {
				p.planes[b][w] |= 1 << bit
			}
		}
	}
}

// Unpack decodes the planes into a scalar configuration. len(dst) must equal
// N(); it is overwritten in place so steady paths stay allocation-free.
func (p *Planes) Unpack(dst Config) {
	if len(dst) != p.n {
		panic("sa: Planes.Unpack configuration length mismatch")
	}
	for v := range dst {
		dst[v] = 0
	}
	for b := 0; b < p.width; b++ {
		plane := p.planes[b]
		for v := range dst {
			dst[v] |= int(plane[v>>6]>>uint(v&63)&1) << uint(b)
		}
	}
}

// Get decodes the state of node v.
func (p *Planes) Get(v int) State {
	w, bit := v>>6, uint(v&63)
	q := 0
	for b := 0; b < p.width; b++ {
		q |= int(p.planes[b][w]>>bit&1) << uint(b)
	}
	return q
}

// Set encodes state q for node v.
func (p *Planes) Set(v int, q State) {
	w, bit := v>>6, uint(v&63)
	for b := 0; b < p.width; b++ {
		if q&(1<<uint(b)) != 0 {
			p.planes[b][w] |= 1 << bit
		} else {
			p.planes[b][w] &^= 1 << bit
		}
	}
}

// GEMask derives the plane of the predicate "state ≥ q" — 64 nodes per step
// of a bit-sliced magnitude comparison over the planes. For AlgAU, whose
// faulty turns occupy the dense suffix 2k..4k−3 of the state space,
// GEMask(2k, dst) is exactly the derived faulty plane; its complement within
// the node range is the able plane. dst must have Words() words; it is fully
// overwritten.
func (p *Planes) GEMask(q State, dst []uint64) {
	if len(dst) != p.words {
		panic("sa: Planes.GEMask destination length mismatch")
	}
	for w := 0; w < p.words; w++ {
		var ge, eq uint64 = 0, ^uint64(0)
		for b := p.width - 1; b >= 0; b-- {
			pb := p.planes[b][w]
			if q&(1<<uint(b)) != 0 {
				// threshold bit 1: states with bit 0 here fall below on tie
				eq &= pb
			} else {
				// threshold bit 0: states with bit 1 here exceed on tie
				ge |= eq & pb
				eq &^= pb
			}
		}
		dst[w] = ge | eq
	}
	// Mask the tail beyond node n−1 so popcounts over the result are exact.
	if tail := uint(p.n & 63); tail != 0 && p.words > 0 {
		dst[p.words-1] &= (1 << tail) - 1
	}
}

// SelfWords derives the per-node self-words from the planes: dst[v] =
// 1 << state(v), the one-word signal contribution of node v. It requires
// NumStates() <= 64 and len(dst) == N(). Word-parallel engines keep this
// array current incrementally and use SelfWords only to (re)materialize it
// from a packed configuration — at startup, after SetState/InjectFaults, or
// after a churn re-compaction.
func (p *Planes) SelfWords(dst []uint64) {
	if p.states > 64 {
		panic("sa: Planes.SelfWords requires a state space of at most 64 states")
	}
	if len(dst) != p.n {
		panic("sa: Planes.SelfWords destination length mismatch")
	}
	for v := range dst {
		dst[v] = 1
	}
	for b := 0; b < p.width; b++ {
		plane := p.planes[b]
		shift := uint(1) << uint(b)
		for v := range dst {
			if plane[v>>6]>>uint(v&63)&1 != 0 {
				dst[v] <<= shift
			}
		}
	}
}

// BuildSignals is the batched neighborhood-signal builder: an OR-scan over
// the CSR adjacency rows of nodes lo..hi−1, producing each node's inclusive
// one-word signal sws[v−lo] = self[v] | OR_{u ∈ N(v)} self[u]. self[v] must
// be 1 << state(v) (see Planes.SelfWords); offsets/neighbors are the raw CSR
// arrays (graph.Graph.CSR). One load+OR per incident edge replaces the
// scalar path's Signal.Reset + per-neighbor Signal.Set, and the result feeds
// WordEval.Eval directly.
func BuildSignals(self []uint64, offsets, neighbors []int, lo, hi int, sws []uint64) {
	for v := lo; v < hi; v++ {
		sw := self[v]
		for _, u := range neighbors[offsets[v]:offsets[v+1]] {
			sw |= self[u]
		}
		sws[v-lo] = sw
	}
}
