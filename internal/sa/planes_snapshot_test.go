package sa_test

import (
	"math/rand"
	"testing"

	"thinunison/internal/sa"
	"thinunison/internal/snapshot"
)

// savePlanes serializes a bit-plane configuration the way the word-parallel
// engine checkpoint does: dimensions, then each plane's raw words.
func savePlanes(p *sa.Planes) []byte {
	var e snapshot.Enc
	e.Int(p.N())
	e.Int(p.NumStates())
	e.Int(p.Width())
	for b := 0; b < p.Width(); b++ {
		e.U64s(p.Plane(b))
	}
	return e.Bytes()
}

// restorePlanes rebuilds a Planes from savePlanes output.
func restorePlanes(t *testing.T, data []byte) *sa.Planes {
	t.Helper()
	d := snapshot.NewDec(data)
	n, states, width := d.Int(), d.Int(), d.Int()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	p := sa.NewPlanes(n, states)
	if p.Width() != width {
		t.Fatalf("restored width %d, saved %d", p.Width(), width)
	}
	for b := 0; b < width; b++ {
		words := d.U64s()
		if len(words) != p.Words() {
			t.Fatalf("plane %d has %d words, want %d", b, len(words), p.Words())
		}
		copy(p.Plane(b), words)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPlanesSnapshotIdentity: restore(save(planes)) is the identity at the
// word-boundary state counts |Q| ∈ {63, 64, 65} — where the plane width
// steps from 6 to 7 bits — and at node counts straddling the 64-node word
// boundary. Identity means: equal raw plane words, equal Unpack, equal Get,
// and equal derived GEMask planes (so a restored word engine computes the
// exact masks the saved one would have).
func TestPlanesSnapshotIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for _, numStates := range []int{63, 64, 65} {
		for _, n := range []int{1, 63, 64, 65, 130} {
			cfg := make(sa.Config, n)
			for v := range cfg {
				cfg[v] = rng.Intn(numStates)
			}
			p := sa.NewPlanes(n, numStates)
			p.Pack(cfg)

			q := restorePlanes(t, savePlanes(p))
			if q.N() != n || q.NumStates() != numStates {
				t.Fatalf("|Q|=%d n=%d: dimensions diverged (%d, %d)", numStates, n, q.N(), q.NumStates())
			}
			for b := 0; b < p.Width(); b++ {
				a, bb := p.Plane(b), q.Plane(b)
				for w := range a {
					if a[w] != bb[w] {
						t.Fatalf("|Q|=%d n=%d: plane %d word %d diverged", numStates, n, b, w)
					}
				}
			}
			out := make(sa.Config, n)
			q.Unpack(out)
			for v := range cfg {
				if out[v] != cfg[v] {
					t.Fatalf("|Q|=%d n=%d: node %d unpacked %d, want %d", numStates, n, v, out[v], cfg[v])
				}
				if q.Get(v) != cfg[v] {
					t.Fatalf("|Q|=%d n=%d: Get(%d) = %d, want %d", numStates, n, v, q.Get(v), cfg[v])
				}
			}
			// Derived planes must match at every threshold near the top of
			// the state space (the faulty-plane thresholds word engines use).
			maskA := make([]uint64, p.Words())
			maskB := make([]uint64, q.Words())
			for _, thr := range []int{0, 1, numStates / 2, numStates - 1} {
				p.GEMask(thr, maskA)
				q.GEMask(thr, maskB)
				for w := range maskA {
					if maskA[w] != maskB[w] {
						t.Fatalf("|Q|=%d n=%d: GEMask(%d) word %d diverged", numStates, n, thr, w)
					}
				}
			}
		}
	}
}

// FuzzPlanesSnapshot extends the identity to arbitrary seeds and dimensions
// around the boundaries.
func FuzzPlanesSnapshot(f *testing.F) {
	f.Add(int64(1), 63, 65)
	f.Add(int64(2), 64, 64)
	f.Add(int64(3), 65, 1)
	f.Fuzz(func(t *testing.T, seed int64, numStates, n int) {
		if numStates < 1 || numStates > 130 || n < 0 || n > 300 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		cfg := make(sa.Config, n)
		for v := range cfg {
			cfg[v] = rng.Intn(numStates)
		}
		p := sa.NewPlanes(n, numStates)
		p.Pack(cfg)
		q := restorePlanes(t, savePlanes(p))
		out := make(sa.Config, n)
		q.Unpack(out)
		for v := range cfg {
			if out[v] != cfg[v] {
				t.Fatalf("seed %d |Q|=%d n=%d: node %d", seed, numStates, n, v)
			}
		}
	})
}
