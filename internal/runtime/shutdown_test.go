package runtime_test

import (
	"context"
	"errors"
	"fmt"
	gort "runtime"
	"testing"
	"time"

	"thinunison/internal/core"
	"thinunison/internal/graph"
	"thinunison/internal/runtime"
)

func newRuntime(t *testing.T, n int) *runtime.Runtime {
	t.Helper()
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	au, err := core.NewAU(g.Diameter())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New(g, au, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// awaitGoroutines polls until the process goroutine count drops back to at
// most baseline (exits are asynchronous after done.Wait's release under
// -race, so a single instantaneous sample can flake).
func awaitGoroutines(baseline int) error {
	deadline := time.Now().Add(10 * time.Second)
	n := 0
	for time.Now().Before(deadline) {
		if n = gort.NumGoroutine(); n <= baseline {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("%d goroutines still running (baseline %d)", n, baseline)
}

// TestShutdownBounded pins the goroutine hygiene of the concurrent runtime:
// Shutdown with a generous deadline returns nil promptly and every node
// goroutine exits — the count returns to its pre-Start baseline, so repeated
// start/shutdown cycles (a long-lived harness) cannot leak.
func TestShutdownBounded(t *testing.T) {
	baseline := gort.NumGoroutine()
	for cycle := 0; cycle < 3; cycle++ {
		rt := newRuntime(t, 16)
		if err := rt.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond) // let the nodes actually run

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		start := time.Now()
		err := rt.Shutdown(ctx)
		cancel()
		if err != nil {
			t.Fatalf("cycle %d: shutdown: %v", cycle, err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("cycle %d: shutdown took %v, want prompt exit", cycle, d)
		}
		if err := awaitGoroutines(baseline); err != nil {
			t.Fatalf("cycle %d: %v after shutdown", cycle, err)
		}
	}
}

// TestShutdownExpiredDeadline: an already-cancelled context surfaces its
// cause, and the stop signal still goes down — a later Stop drains the
// goroutines, so a deadline miss degrades to background cleanup, not a leak.
func TestShutdownExpiredDeadline(t *testing.T) {
	baseline := gort.NumGoroutine()
	rt := newRuntime(t, 16)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The nodes may exit before the select observes the cancelled context
	// (both channels ready), so nil is acceptable; an error must carry the
	// cancellation cause.
	if err := rt.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("shutdown error = %v, want context.Canceled cause", err)
	}
	rt.Stop() // unbounded wait drains whatever the bounded call left behind
	if err := awaitGoroutines(baseline); err != nil {
		t.Fatalf("%v after stop", err)
	}
}
