package runtime_test

import (
	"testing"
	"time"

	"thinunison/internal/core"
	"thinunison/internal/graph"
	"thinunison/internal/runtime"
	"thinunison/internal/sa"
)

// TestConcurrentStabilization runs AlgAU with one goroutine per node under
// the Go scheduler's asynchrony and checks that the pulse clock stabilizes:
// a relaxed snapshot satisfies "good graph" continuously.
func TestConcurrentStabilization(t *testing.T) {
	g, err := graph.RandomConnected(12, 0.3, newRng())
	if err != nil {
		t.Fatal(err)
	}
	au, err := core.NewAU(g.Diameter())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New(g, au, nil, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	if !rt.AwaitStable(func(cfg sa.Config) bool {
		return au.GraphGood(g, cfg)
	}, 20*time.Millisecond, 30*time.Second) {
		t.Fatal("pulse clock did not stabilize under concurrent execution")
	}

	// Liveness: every node keeps transitioning after stabilization.
	before := rt.Activations()
	time.Sleep(20 * time.Millisecond)
	after := rt.Activations()
	for v := range before {
		if after[v] <= before[v] {
			t.Errorf("node %d stopped being activated", v)
		}
	}
}

// TestConcurrentFaultRecovery injects transient faults mid-flight and checks
// re-stabilization.
func TestConcurrentFaultRecovery(t *testing.T) {
	g, err := graph.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	au, err := core.NewAU(g.Diameter())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New(g, au, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	good := func(cfg sa.Config) bool { return au.GraphGood(g, cfg) }
	if !rt.AwaitStable(good, 10*time.Millisecond, 30*time.Second) {
		t.Fatal("initial stabilization failed")
	}
	for burst := 0; burst < 3; burst++ {
		for v := 0; v < g.N(); v += 2 {
			if err := rt.Inject(v, burst%au.NumStates()); err != nil {
				t.Fatal(err)
			}
		}
		if !rt.AwaitStable(good, 10*time.Millisecond, 30*time.Second) {
			t.Fatalf("burst %d: no recovery", burst)
		}
	}
}

func TestLifecycleErrors(t *testing.T) {
	g, err := graph.Path(3)
	if err != nil {
		t.Fatal(err)
	}
	au, err := core.NewAU(2)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New(g, au, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err == nil {
		t.Error("double Start should fail")
	}
	if err := rt.Inject(99, 0); err == nil {
		t.Error("out-of-range inject should fail")
	}
	if err := rt.Inject(0, 10_000); err == nil {
		t.Error("out-of-range state should fail")
	}
	rt.Stop()
	rt.Stop() // idempotent

	if _, err := runtime.New(g, au, sa.Config{0}, 1); err == nil {
		t.Error("wrong-length initial config should fail")
	}
}
