package runtime_test

import "math/rand"

func newRng() *rand.Rand { return rand.New(rand.NewSource(42)) }
