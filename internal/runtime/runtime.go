// Package runtime executes SA algorithms with real concurrency: one
// goroutine per node, each repeatedly sensing its neighbors' published
// states and publishing its own transition. The Go scheduler plays the role
// of the asynchronous adversary — activation interleavings are arbitrary,
// and a node may read a mix of old and new neighbor states, which is an even
// weaker (more hostile) consistency regime than the paper's step model.
//
// This runtime complements the deterministic engines (packages sim and
// asyncsim) used for the measured experiments: it demonstrates that AlgAU's
// stabilization survives genuine shared-memory asynchrony, the natural Go
// rendering of the paper's biological cellular network.
//
// Publication uses one atomic cell per node, so the execution is data-race
// free; only the *cross-node* snapshot is relaxed.
package runtime

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"thinunison/internal/graph"
	"thinunison/internal/sa"
)

// Runtime runs one concurrent execution.
type Runtime struct {
	g   *graph.Graph
	alg sa.Algorithm

	cells       []atomic.Int64
	activations []atomic.Int64
	stop        chan struct{}
	stopOnce    sync.Once
	done        sync.WaitGroup
	started     atomic.Bool
	seed        int64
}

// New returns a runtime for alg on g with the given initial configuration
// (nil draws a random one from seed).
func New(g *graph.Graph, alg sa.Algorithm, initial sa.Config, seed int64) (*Runtime, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if initial == nil {
		initial = sa.Random(g.N(), alg.NumStates(), rand.New(rand.NewSource(seed)))
	}
	if len(initial) != g.N() {
		return nil, fmt.Errorf("runtime: %d initial states for %d nodes", len(initial), g.N())
	}
	r := &Runtime{
		g:           g,
		alg:         alg,
		cells:       make([]atomic.Int64, g.N()),
		activations: make([]atomic.Int64, g.N()),
		stop:        make(chan struct{}),
		seed:        seed,
	}
	for v, q := range initial {
		r.cells[v].Store(int64(q))
	}
	return r, nil
}

// Start launches one goroutine per node. It may be called once.
func (r *Runtime) Start() error {
	if r.started.Swap(true) {
		return fmt.Errorf("runtime: already started")
	}
	for v := 0; v < r.g.N(); v++ {
		v := v
		r.done.Add(1)
		go r.nodeLoop(v, rand.New(rand.NewSource(r.seed+int64(v)+1)))
	}
	return nil
}

// nodeLoop is the per-node goroutine: sense, transition, publish, yield.
func (r *Runtime) nodeLoop(v int, rng *rand.Rand) {
	defer r.done.Done()
	sig := sa.NewSignal(r.alg.NumStates())
	neighbors := r.g.Neighbors(v)
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		sig.Reset()
		self := sa.State(r.cells[v].Load())
		sig.Set(self)
		for _, u := range neighbors {
			sig.Set(sa.State(r.cells[u].Load()))
		}
		next := r.alg.Transition(self, sig, rng)
		r.cells[v].Store(int64(next))
		r.activations[v].Add(1)

		// Yield with jitter so interleavings vary; occasionally sleep to
		// let starved goroutines run on oversubscribed machines.
		if rng.Intn(64) == 0 {
			time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
		}
	}
}

// Stop terminates all node goroutines and waits for them to exit.
func (r *Runtime) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.done.Wait()
}

// Shutdown terminates all node goroutines like Stop, but bounds the wait by
// ctx: it returns nil once every goroutine has exited, or the context's
// cause if the deadline expires first. Either way the stop signal stays
// down — a deadline miss means the remaining goroutines keep draining in the
// background, and a later Stop/Shutdown call waits for them again.
func (r *Runtime) Shutdown(ctx context.Context) error {
	r.stopOnce.Do(func() { close(r.stop) })
	exited := make(chan struct{})
	go func() {
		r.done.Wait()
		close(exited)
	}()
	select {
	case <-exited:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("runtime: shutdown: %w", context.Cause(ctx))
	}
}

// Snapshot returns a (relaxed) snapshot of the configuration.
func (r *Runtime) Snapshot() sa.Config {
	cfg := make(sa.Config, len(r.cells))
	for v := range r.cells {
		cfg[v] = sa.State(r.cells[v].Load())
	}
	return cfg
}

// Activations returns how many transitions each node has performed.
func (r *Runtime) Activations() []int64 {
	out := make([]int64, len(r.activations))
	for v := range r.activations {
		out[v] = r.activations[v].Load()
	}
	return out
}

// Inject corrupts node v to state q (a transient fault under concurrency).
func (r *Runtime) Inject(v int, q sa.State) error {
	if v < 0 || v >= len(r.cells) {
		return fmt.Errorf("runtime: node %d out of range", v)
	}
	if q < 0 || q >= r.alg.NumStates() {
		return fmt.Errorf("runtime: state %d out of range", q)
	}
	r.cells[v].Store(int64(q))
	return nil
}

// AwaitStable polls snapshots until pred holds continuously for the confirm
// window, or the timeout expires. Because snapshots are relaxed, pred should
// be a closed (forward-invariant) predicate such as "the graph is good".
func (r *Runtime) AwaitStable(pred func(sa.Config) bool, confirm, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	var since time.Time
	for time.Now().Before(deadline) {
		if pred(r.Snapshot()) {
			if since.IsZero() {
				since = time.Now()
			} else if time.Since(since) >= confirm {
				return true
			}
		} else {
			since = time.Time{}
		}
		time.Sleep(200 * time.Microsecond)
	}
	return false
}
