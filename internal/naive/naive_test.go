package naive_test

import (
	"math/rand"
	"testing"

	"thinunison/internal/core"
	"thinunison/internal/graph"
	"thinunison/internal/naive"
	"thinunison/internal/sa"
	"thinunison/internal/sched"
	"thinunison/internal/sim"
)

func mustAlg(t *testing.T, d, c int) *naive.Alg {
	t.Helper()
	alg, err := naive.New(d, c)
	if err != nil {
		t.Fatalf("New(%d,%d): %v", d, c, err)
	}
	return alg
}

func TestConstruction(t *testing.T) {
	if _, err := naive.New(0, 2); err == nil {
		t.Error("New(0,2) should fail")
	}
	if _, err := naive.New(2, 1); err == nil {
		t.Error("New(2,1) should fail (paper requires c > 1)")
	}
	alg := mustAlg(t, 2, 2)
	if got, want := alg.NumStates(), 10; got != want {
		t.Errorf("NumStates = %d, want %d", got, want)
	}
}

func TestStateRoundTrip(t *testing.T) {
	alg := mustAlg(t, 3, 2)
	for q := 0; q < alg.NumStates(); q++ {
		turn := alg.Turn(q)
		back, err := alg.State(turn)
		if err != nil {
			t.Fatalf("State(%v): %v", turn, err)
		}
		if back != q {
			t.Errorf("round trip %d -> %v -> %d", q, turn, back)
		}
		if alg.IsOutput(q) != (turn.Kind == naive.Main) {
			t.Errorf("state %d: IsOutput=%v kind=%v", q, alg.IsOutput(q), turn.Kind)
		}
	}
	if _, err := alg.State(naive.Turn{Kind: naive.Main, Index: 99}); err == nil {
		t.Error("out-of-range turn should fail")
	}
}

func TestST1Advance(t *testing.T) {
	alg := mustAlg(t, 2, 2)
	sig := sa.NewSignal(alg.NumStates())
	q0 := alg.MustState(naive.Turn{Kind: naive.Main, Index: 0})
	q1 := alg.MustState(naive.Turn{Kind: naive.Main, Index: 1})
	// All neighbors at 0: advance to 1.
	sig.Set(q0)
	if got := alg.Transition(q0, sig, nil); got != q1 {
		t.Errorf("ST1 from uniform 0: got %v", alg.Turn(got))
	}
	// Neighbors at {0, 1}: still advance.
	sig.Set(q1)
	if got := alg.Transition(q0, sig, nil); got != q1 {
		t.Errorf("ST1 from {0,1}: got %v", alg.Turn(got))
	}
	// But the node at 1 sensing {0,1} must wait.
	if got := alg.Transition(q1, sig, nil); got != q1 {
		t.Errorf("node at 1 sensing {0,1} should stay, got %v", alg.Turn(got))
	}
}

func TestST2FaultDetection(t *testing.T) {
	alg := mustAlg(t, 2, 2)
	sig := sa.NewSignal(alg.NumStates())
	q0 := alg.MustState(naive.Turn{Kind: naive.Main, Index: 0})
	q2 := alg.MustState(naive.Turn{Kind: naive.Main, Index: 2})
	r0 := alg.MustState(naive.Turn{Kind: naive.Reset, Index: 0})
	r4 := alg.MustState(naive.Turn{Kind: naive.Reset, Index: 4})
	// Turn 0 sensing turn 2 (a gap): reset.
	sig.Set(q0)
	sig.Set(q2)
	if got := alg.Transition(q0, sig, nil); got != r0 {
		t.Errorf("ST2 on gap: got %v, want R0", alg.Turn(got))
	}
	// Turn 0 sensing RcD is allowed (the wave exit handshake): no reset.
	sig.Reset()
	sig.Set(q0)
	sig.Set(r4)
	if got := alg.Transition(q0, sig, nil); got != q0 {
		t.Errorf("turn 0 sensing RcD should stay, got %v", alg.Turn(got))
	}
	// But turn 1 sensing RcD must reset (only ℓ = 0 tolerates RcD).
	q1 := alg.MustState(naive.Turn{Kind: naive.Main, Index: 1})
	sig.Reset()
	sig.Set(q1)
	sig.Set(r4)
	if got := alg.Transition(q1, sig, nil); got != r0 {
		t.Errorf("turn 1 sensing RcD should reset, got %v", alg.Turn(got))
	}
}

func TestST3Wave(t *testing.T) {
	alg := mustAlg(t, 2, 2)
	sig := sa.NewSignal(alg.NumStates())
	r := func(i int) sa.State { return alg.MustState(naive.Turn{Kind: naive.Reset, Index: i}) }
	q0 := alg.MustState(naive.Turn{Kind: naive.Main, Index: 0})
	// R1 sensing {R1, R2}: advance to R2.
	sig.Set(r(1))
	sig.Set(r(2))
	if got := alg.Transition(r(1), sig, nil); got != r(2) {
		t.Errorf("ST3: got %v, want R2", alg.Turn(got))
	}
	// R1 sensing R0 (behind it): blocked.
	sig.Set(r(0))
	if got := alg.Transition(r(1), sig, nil); got != r(1) {
		t.Errorf("ST3 blocked by R0: got %v", alg.Turn(got))
	}
	// RcD sensing {RcD, 0}: exit to 0.
	sig.Reset()
	sig.Set(r(4))
	sig.Set(q0)
	if got := alg.Transition(r(4), sig, nil); got != q0 {
		t.Errorf("ST3 exit: got %v, want 0", alg.Turn(got))
	}
	// RcD sensing a lower reset turn: blocked.
	sig.Set(r(3))
	if got := alg.Transition(r(4), sig, nil); got != r(4) {
		t.Errorf("ST3 exit blocked: got %v", alg.Turn(got))
	}
}

// TestFigure2LiveLock is experiment F2: from the Figure 2(a) configuration,
// under the paper's fair rotating schedule, the execution of the Appendix A
// algorithm becomes periodic without ever reaching a legitimate
// configuration — a live-lock.
func TestFigure2LiveLock(t *testing.T) {
	li, err := naive.NewLiveLockInstance()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := li.AnalyzeLiveLock(1000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Period == 0 {
		t.Fatal("no period detected")
	}
	if rep.LegitimateSeen {
		t.Error("execution reached a legitimate configuration; not a live-lock")
	}
	t.Logf("live-lock: configurations repeat with period %d sweeps starting at sweep %d",
		rep.Period, rep.PeriodStart)
}

// TestLiveLockRunsForever drives the same instance through the generic
// engine for 10^4 rounds and confirms it never stabilizes, while AlgAU on
// the very same graph and schedule stabilizes quickly — the head-to-head
// comparison motivating the paper's reset-free design.
func TestLiveLockRunsForever(t *testing.T) {
	li, err := naive.NewLiveLockInstance()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(li.Graph, li.Alg, sim.Options{
		Initial:   li.Initial,
		Scheduler: sched.NewScripted(li.Script, true),
	})
	if err != nil {
		t.Fatal(err)
	}
	edges := li.Graph.Edges()
	rounds, err := eng.RunUntil(func(e *sim.Engine) bool {
		return li.Alg.Legitimate(e.Config(), edges)
	}, 10000)
	if err == nil {
		t.Fatalf("naive algorithm unexpectedly stabilized after %d rounds", rounds)
	}

	// AlgAU on the same instance, same schedule.
	au, err := core.NewAU(li.Graph.Diameter())
	if err != nil {
		t.Fatal(err)
	}
	auEng, err := sim.New(li.Graph, au, sim.Options{
		Scheduler: sched.NewScripted(li.Script, true),
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := au.K()
	rounds, err = auEng.RunUntil(func(e *sim.Engine) bool {
		return au.GraphGood(li.Graph, e.Config())
	}, 50*k*k*k)
	if err != nil {
		t.Fatalf("AlgAU did not stabilize on the live-lock instance: %v", err)
	}
	t.Logf("AlgAU stabilized in %d rounds on the instance where the naive algorithm live-locks", rounds)
}

// TestNaiveFailsFromRandomConfigs quantifies the failure mode: across random
// initial configurations on cycles, the naive algorithm frequently fails to
// stabilize within a generous budget (while AlgAU always succeeds; see the
// core package tests). This regenerates the qualitative claim of Appendix A.
func TestNaiveFailsFromRandomConfigs(t *testing.T) {
	alg := mustAlg(t, 2, 2)
	g, err := graph.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	failures := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		eng, err := sim.New(g, alg, sim.Options{
			Initial:   sa.Random(g.N(), alg.NumStates(), rng),
			Scheduler: sched.NewRoundRobin(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunUntil(func(e *sim.Engine) bool {
			return alg.Legitimate(e.Config(), edges)
		}, 2000); err != nil {
			failures++
		}
	}
	t.Logf("naive algorithm failed to stabilize in %d/%d random trials", failures, trials)
	if failures == 0 {
		t.Log("note: all random trials stabilized; the live-lock needs the crafted configuration")
	}
}
