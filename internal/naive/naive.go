// Package naive implements the failed reset-based asynchronous unison
// attempt of Appendix A of the paper, together with the Figure 2 live-lock
// counter-example that motivates AlgAU's reset-free design.
//
// The algorithm consists of a main component with turns T = {0, …, cD} that
// advance cyclically (ST1), a fault detector that jumps to the first reset
// turn R0 upon sensing a turn gap (ST2), and a reset wave R0 → R1 → … → RcD
// → 0 (ST3). Appendix A exhibits an 8-node cycle with D = 2, c = 2 on which
// a rotating reset wave chases itself forever: the algorithm live-locks and
// is therefore not a correct self-stabilizing AU algorithm.
package naive

import (
	"fmt"
	"math/rand"

	"thinunison/internal/sa"
)

// Reset is the state-kind marker used by Turn.
type Kind int

// Turn kinds.
const (
	Main  Kind = iota + 1 // a main-component turn ℓ ∈ {0..cD}
	Reset                 // a reset turn R_i, i ∈ {0..cD}
)

// Turn is a state of the naive algorithm.
type Turn struct {
	Kind  Kind
	Index int // ℓ for Main, i for Reset
}

// String renders the turn like the paper ("3" or "R3").
func (t Turn) String() string {
	if t.Kind == Reset {
		return fmt.Sprintf("R%d", t.Index)
	}
	return fmt.Sprintf("%d", t.Index)
}

// Alg is the Appendix A algorithm for given D and constant c > 1.
// It implements sa.Algorithm with the dense encoding
//
//	main turn ℓ ↦ ℓ           (0 … cD)
//	reset R_i   ↦ cD + 1 + i  (cD+1 … 2cD+1)
type Alg struct {
	d, c int
	m    int // m = cD + 1: number of main turns (and of reset turns)
}

var (
	_ sa.Algorithm = (*Alg)(nil)
	_ sa.Namer     = (*Alg)(nil)
)

// New returns the naive algorithm for diameter bound d >= 1 and constant
// c >= 2 (the paper requires c > 1).
func New(d, c int) (*Alg, error) {
	if d < 1 {
		return nil, fmt.Errorf("naive: diameter bound must be >= 1, got %d", d)
	}
	if c < 2 {
		return nil, fmt.Errorf("naive: constant c must be >= 2, got %d", c)
	}
	return &Alg{d: d, c: c, m: c*d + 1}, nil
}

// D returns the diameter bound.
func (a *Alg) D() int { return a.d }

// C returns the constant c.
func (a *Alg) C() int { return a.c }

// NumStates returns |Q| = 2(cD + 1).
func (a *Alg) NumStates() int { return 2 * a.m }

// State encodes a turn.
func (a *Alg) State(t Turn) (sa.State, error) {
	if t.Index < 0 || t.Index >= a.m {
		return 0, fmt.Errorf("naive: turn index %d out of [0,%d)", t.Index, a.m)
	}
	switch t.Kind {
	case Main:
		return t.Index, nil
	case Reset:
		return a.m + t.Index, nil
	default:
		return 0, fmt.Errorf("naive: invalid turn kind %d", t.Kind)
	}
}

// MustState is State for known-valid turns; it panics on invalid input.
func (a *Alg) MustState(t Turn) sa.State {
	q, err := a.State(t)
	if err != nil {
		panic(err)
	}
	return q
}

// Turn decodes a state.
func (a *Alg) Turn(q sa.State) Turn {
	if q < a.m {
		return Turn{Kind: Main, Index: q}
	}
	return Turn{Kind: Reset, Index: q - a.m}
}

// IsOutput reports whether q is a main-component turn (the output states).
func (a *Alg) IsOutput(q sa.State) bool { return q < a.m }

// Output returns the clock value of a main turn.
func (a *Alg) Output(q sa.State) int { return q }

// StateName implements sa.Namer.
func (a *Alg) StateName(q sa.State) string { return a.Turn(q).String() }

// Transition implements the three transition types of Appendix A. The
// algorithm is deterministic; rng is unused.
func (a *Alg) Transition(q sa.State, sig sa.Signal, _ *rand.Rand) sa.State {
	t := a.Turn(q)
	m := a.m

	if t.Kind == Main {
		l := t.Index
		next := (l + 1) % m
		prev := (l - 1 + m) % m

		// ST2: sensing a fault sends the node to R0. The allowed set is
		// {ℓ−1, ℓ, ℓ+1} (and additionally R_cD when ℓ = 0).
		allowed := []sa.State{l, next, prev}
		if l == 0 {
			allowed = append(allowed, a.MustState(Turn{Kind: Reset, Index: m - 1}))
		}
		if !sig.SubsetOf(allowed...) {
			return a.MustState(Turn{Kind: Reset, Index: 0})
		}

		// ST1: the usual unison advance, Θ ⊆ {ℓ, ℓ+1}.
		if sig.SubsetOf(l, next) {
			return next
		}
		return q
	}

	// ST3: the reset wave.
	i := t.Index
	if i != m-1 {
		// Advance if every sensed state is a reset turn R_j with j >= i.
		allowed := make([]sa.State, 0, m-i)
		for j := i; j < m; j++ {
			allowed = append(allowed, a.MustState(Turn{Kind: Reset, Index: j}))
		}
		if sig.SubsetOf(allowed...) {
			return a.MustState(Turn{Kind: Reset, Index: i + 1})
		}
		return q
	}
	// i == cD: exit the reset wave back to turn 0 if Θ ⊆ {RcD, 0}.
	if sig.SubsetOf(q, a.MustState(Turn{Kind: Main, Index: 0})) {
		return a.MustState(Turn{Kind: Main, Index: 0})
	}
	return q
}

// Legitimate reports whether cfg is a legitimate unison configuration for
// the naive algorithm: all nodes in main turns, and every edge's endpoint
// turns adjacent modulo m. (Used to show the live-lock never reaches a
// legitimate configuration.)
func (a *Alg) Legitimate(cfg sa.Config, edges [][2]int) bool {
	for _, q := range cfg {
		if !a.IsOutput(q) {
			return false
		}
	}
	for _, e := range edges {
		d := (cfg[e[0]] - cfg[e[1]] + a.m) % a.m
		if d != 0 && d != 1 && d != a.m-1 {
			return false
		}
	}
	return true
}
