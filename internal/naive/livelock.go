package naive

import (
	"fmt"

	"thinunison/internal/graph"
	"thinunison/internal/sa"
)

// This file packages the Figure 2 counter-example: an 8-node cycle with
// D = 2, c = 2 on which the Appendix A algorithm live-locks under a fair
// one-node-per-step rotating schedule. Starting from the configuration of
// Figure 2(a), the execution becomes periodic — a reset wave chases itself
// around the cycle forever — and never reaches a legitimate unison
// configuration. (The paper presents the same phenomenon; our step-level
// alignment of the figure differs because the figure's node placement is a
// drawing, but the initial configuration and the rotating schedule are the
// paper's.)

// LiveLockInstance bundles everything needed to reproduce Figure 2.
type LiveLockInstance struct {
	Alg     *Alg
	Graph   *graph.Graph
	Initial sa.Config
	// Script is the periodic activation script: step t activates node
	// t mod 8, matching the paper's "node v_{t−1} is activated in step t".
	Script [][]int
}

// NewLiveLockInstance returns the Figure 2 instance: C_8, D = 2, c = 2 and
// the initial configuration (0, 0, R0, R1, R2, R3, R4, R4).
func NewLiveLockInstance() (*LiveLockInstance, error) {
	const n = 8
	alg, err := New(2, 2)
	if err != nil {
		return nil, err
	}
	g, err := graph.Cycle(n)
	if err != nil {
		return nil, err
	}
	turns := []Turn{
		{Kind: Main, Index: 0},
		{Kind: Main, Index: 0},
		{Kind: Reset, Index: 0},
		{Kind: Reset, Index: 1},
		{Kind: Reset, Index: 2},
		{Kind: Reset, Index: 3},
		{Kind: Reset, Index: 4},
		{Kind: Reset, Index: 4},
	}
	cfg := make(sa.Config, n)
	for i, t := range turns {
		q, err := alg.State(t)
		if err != nil {
			return nil, err
		}
		cfg[i] = q
	}
	script := make([][]int, n)
	for i := range script {
		script[i] = []int{i}
	}
	return &LiveLockInstance{Alg: alg, Graph: g, Initial: cfg, Script: script}, nil
}

// LiveLockReport is the outcome of AnalyzeLiveLock.
type LiveLockReport struct {
	// PeriodStart and Period describe the detected cycle in sweep space:
	// the configuration after sweep PeriodStart+Period equals the one after
	// sweep PeriodStart (one sweep = 8 steps = one full round).
	PeriodStart int
	Period      int
	// LegitimateSeen reports whether any configuration along the way
	// (including inside the period) was a legitimate unison configuration.
	LegitimateSeen bool
	// Sweeps holds the per-sweep configurations up to the detected period,
	// for trace output.
	Sweeps []sa.Config
}

// AnalyzeLiveLock executes the instance sweep by sweep until the
// configuration recurs, proving (by determinism of both the algorithm and
// the schedule) that the execution is periodic from that point on. The
// execution is a live-lock iff no legitimate configuration was seen.
func (li *LiveLockInstance) AnalyzeLiveLock(maxSweeps int) (LiveLockReport, error) {
	n := li.Graph.N()
	sig := sa.NewSignal(li.Alg.NumStates())
	edges := li.Graph.Edges()

	cfg := li.Initial.Clone()
	seen := make(map[string]int)
	var rep LiveLockReport

	keyOf := func(c sa.Config) string { return fmt.Sprint([]int(c)) }

	for sweep := 0; sweep <= maxSweeps; sweep++ {
		k := keyOf(cfg)
		if prev, ok := seen[k]; ok {
			rep.PeriodStart = prev
			rep.Period = sweep - prev
			return rep, nil
		}
		seen[k] = sweep
		rep.Sweeps = append(rep.Sweeps, cfg.Clone())
		if li.Alg.Legitimate(cfg, edges) {
			rep.LegitimateSeen = true
		}
		// One sweep: activate v0, v1, …, v7 sequentially (one per step).
		for v := 0; v < n; v++ {
			sig.Reset()
			sig.Set(cfg[v])
			for _, u := range li.Graph.Neighbors(v) {
				sig.Set(cfg[u])
			}
			cfg[v] = li.Alg.Transition(cfg[v], sig, nil)
		}
	}
	return rep, fmt.Errorf("naive: no period detected within %d sweeps", maxSweeps)
}
