// Package randx holds small allocation-conscious randomness helpers shared
// by the simulation engines.
package randx

import "math/rand"

// PartialShuffle maintains *buf as a permutation of 0..n-1 and runs the
// first count swaps of a Fisher–Yates pass over it, returning the count
// distinct elements now at the front. count is clamped to [0, n].
//
// It replaces rng.Perm(n)[:count] on hot paths: repeated calls reuse the
// buffer (zero allocations in steady state) and cost O(count) instead of
// O(n). The buffer stays a valid permutation across calls, so any prefix is
// always a uniform sample without replacement. The returned slice aliases
// *buf and is valid until the next call with the same buffer.
func PartialShuffle(buf *[]int, n, count int, rng *rand.Rand) []int {
	if count < 0 {
		count = 0
	}
	if count > n {
		count = n
	}
	b := *buf
	if len(b) != n {
		b = make([]int, n)
		for i := range b {
			b[i] = i
		}
		*buf = b
	}
	for i := 0; i < count; i++ {
		j := i + rng.Intn(n-i)
		b[i], b[j] = b[j], b[i]
	}
	return b[:count]
}
