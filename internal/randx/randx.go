// Package randx holds small allocation-conscious randomness helpers shared
// by the simulation engines: a partial Fisher–Yates shuffle for fault
// sampling and the counter-based per-node random streams that make sharded
// execution order-invariant (see internal/shard).
package randx

import "math/rand"

// splitMix64 is the splitmix64 finalizer: a cheap invertible avalanche that
// turns a structured counter into a well-mixed 64-bit word. It is the mixing
// primitive behind NodeSeed and Seq.
func splitMix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// NodeSeed maps (run seed, step index, node ID) to a decorrelated stream
// seed. Sharded engines draw every coin toss of node v at step t from a Seq
// seeded with NodeSeed(seed, t, v), so a node's randomness is a pure function
// of the run seed and its coordinates — independent of worker count,
// scheduling order and goroutine interleaving. Two finalizer applications
// domain-separate the step and node dimensions.
func NodeSeed(seed int64, step, node int) uint64 {
	return splitMix64(splitMix64(uint64(seed)^0x5851f42d4c957f2d*uint64(step+1)) + uint64(node))
}

// Seq is a splitmix64 sequence implementing rand.Source64. Unlike
// rand.NewSource's lagged-Fibonacci generator (whose seeding walks a
// 607-word table), reseeding a Seq is a single store, so sharded engines can
// switch to a fresh per-node stream before every transition at no cost.
// Wrap it once per worker: rand.New(&Seq{}).
//
// The zero value is a valid source (the all-zero stream); call Reseed before
// drawing.
type Seq struct {
	state uint64
}

// Reseed restarts the sequence at the given stream seed.
func (s *Seq) Reseed(seed uint64) { s.state = seed }

// Seed implements rand.Source.
func (s *Seq) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64: it advances the counter and returns its
// finalized mix.
func (s *Seq) Uint64() uint64 {
	s.state++
	return splitMix64(s.state)
}

// Int63 implements rand.Source.
func (s *Seq) Int63() int64 { return int64(s.Uint64() >> 1) }

// Counting wraps a rand.Source64 and counts draws. It is a pass-through —
// wrapping a source changes nothing about the produced stream, so counted
// engines stay byte-identical to uncounted ones — and the count lives in a
// plain (non-atomic) field: each engine goroutine owns its own Counting and
// the coordinator drains them with Take once per step, turning per-draw
// bookkeeping into an O(P) flush.
type Counting struct {
	src   rand.Source64
	n     uint64
	total uint64 // lifetime draws, never reset — the stream cursor
}

// NewCounting returns a counting wrapper around src.
func NewCounting(src rand.Source64) *Counting { return &Counting{src: src} }

// Uint64 implements rand.Source64.
func (c *Counting) Uint64() uint64 {
	c.n++
	c.total++
	return c.src.Uint64()
}

// Int63 implements rand.Source.
func (c *Counting) Int63() int64 {
	c.n++
	c.total++
	return c.src.Int63()
}

// Seed implements rand.Source.
func (c *Counting) Seed(seed int64) { c.src.Seed(seed) }

// Take returns the number of draws since the last Take and resets it.
func (c *Counting) Take() uint64 {
	n := c.n
	c.n = 0
	return n
}

// Total returns the lifetime draw count: the stream cursor. Unlike the
// Take-drained per-step tally, it never resets, so it identifies the exact
// position of the wrapped source within its stream. Every draw routed
// through the wrapper — Int63 or Uint64 alike — advances the wrapped source
// by exactly one internal step (math/rand's generators derive Int63 from the
// same single advance), which is what makes FastForward exact.
func (c *Counting) Total() uint64 { return c.total }

// Pending returns the draws since the last Take without resetting them.
func (c *Counting) Pending() uint64 { return c.n }

// FastForward advances the wrapped source by total draws and sets the
// cursor accordingly, leaving pending un-Taken draws at pending. It is the
// restore half of checkpointing: recreate the source from its seed, fast
// forward to the saved Total, and every subsequent draw reproduces the
// original stream exactly — no reaching into the generator's internal state.
func (c *Counting) FastForward(total, pending uint64) {
	for i := uint64(0); i < total; i++ {
		c.src.Uint64()
	}
	c.total = total
	c.n = pending
}

// PartialShuffle maintains *buf as a permutation of 0..n-1 and runs the
// first count swaps of a Fisher–Yates pass over it, returning the count
// distinct elements now at the front. count is clamped to [0, n].
//
// It replaces rng.Perm(n)[:count] on hot paths: repeated calls reuse the
// buffer (zero allocations in steady state) and cost O(count) instead of
// O(n). The buffer stays a valid permutation across calls, so any prefix is
// always a uniform sample without replacement. The returned slice aliases
// *buf and is valid until the next call with the same buffer.
func PartialShuffle(buf *[]int, n, count int, rng *rand.Rand) []int {
	if count < 0 {
		count = 0
	}
	if count > n {
		count = n
	}
	b := *buf
	if len(b) != n {
		b = make([]int, n)
		for i := range b {
			b[i] = i
		}
		*buf = b
	}
	for i := 0; i < count; i++ {
		j := i + rng.Intn(n-i)
		b[i], b[j] = b[j], b[i]
	}
	return b[:count]
}
