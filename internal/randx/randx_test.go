package randx_test

import (
	"math/rand"
	"testing"

	"thinunison/internal/randx"
)

func TestPartialShuffleDistinctAndClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf []int
	for _, count := range []int{-3, 0, 1, 4, 10, 15} {
		got := randx.PartialShuffle(&buf, 10, count, rng)
		want := count
		if want < 0 {
			want = 0
		}
		if want > 10 {
			want = 10
		}
		if len(got) != want {
			t.Fatalf("count %d: got %d elements, want %d", count, len(got), want)
		}
		seen := make(map[int]bool, len(got))
		for _, v := range got {
			if v < 0 || v >= 10 {
				t.Fatalf("count %d: element %d out of range", count, v)
			}
			if seen[v] {
				t.Fatalf("count %d: duplicate element %d", count, v)
			}
			seen[v] = true
		}
		// The buffer must remain a permutation of 0..9 across calls.
		perm := make(map[int]bool, 10)
		for _, v := range buf {
			perm[v] = true
		}
		if len(buf) != 10 || len(perm) != 10 {
			t.Fatalf("count %d: buffer is not a permutation: %v", count, buf)
		}
	}
}

func TestPartialShuffleDeterministic(t *testing.T) {
	draw := func() [][]int {
		rng := rand.New(rand.NewSource(99))
		var buf []int
		var out [][]int
		for i := 0; i < 5; i++ {
			got := randx.PartialShuffle(&buf, 20, 6, rng)
			out = append(out, append([]int(nil), got...))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	}
}
