// Package budget centralizes the concrete round-budget formulas derived from
// the paper's theorems. The facade (package thinunison) and the campaign
// runner (internal/campaign) both enforce stabilization against these
// budgets; keeping them in one place guarantees the two stay in sync when a
// constant is tightened. All formulas saturate at math.MaxInt instead of
// overflowing for degenerate (huge-D) inputs.
package budget

import "thinunison/internal/stats"

// AU is the Theorem 1.1 stabilization budget 60k³ + 500 for AlgAU with clock
// parameter k = 3D + 2 (a concrete constant for the paper's O(D³) rounds).
func AU(k int) int {
	return stats.SatAdd(stats.SatMul(60, k, k, k), 500)
}

// Task is the generous Theorem 1.3/1.4 budget 3000(D + log n)log n + 5000
// for the synchronous AlgLE/AlgMIS programs on an n-node graph.
func Task(d, n int) int {
	logn := stats.Log2(n)
	return stats.SatAdd(stats.SatMul(3000, stats.SatAdd(d, logn), logn), 5000)
}

// Synchronizer is the extra allowance 80k³ (k = 3D + 2) granted when a
// synchronous program runs through the Corollary 1.2 synchronizer, covering
// the pulse clock's own stabilization before simulated rounds make progress.
func Synchronizer(d int) int {
	k := stats.SatAdd(stats.SatMul(3, d), 2)
	return stats.SatMul(80, k, k, k)
}
