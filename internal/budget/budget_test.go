package budget_test

import (
	"math"
	"testing"

	"thinunison/internal/budget"
)

// TestAUFormula pins the Theorem 1.1 budget 60k³ + 500 on representative
// clock parameters (k = 3D + 2).
func TestAUFormula(t *testing.T) {
	cases := []struct{ k, want int }{
		{1, 560},
		{5, 8000},      // D = 1
		{8, 31220},     // D = 2
		{11, 80360},    // D = 3
		{20, 480500},   // D = 6, the churn-margined bio-churn clock
		{100, 60000500},
	}
	for _, c := range cases {
		if got := budget.AU(c.k); got != c.want {
			t.Errorf("AU(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

// TestTaskFormula pins the Theorem 1.3/1.4 budget 3000(D + log n)log n + 5000.
func TestTaskFormula(t *testing.T) {
	cases := []struct{ d, n, want int }{
		{3, 2, 17000},   // log2(2) = 1
		{3, 16, 89000},  // log2(16) = 4
		{1, 1024, 335000},
	}
	for _, c := range cases {
		if got := budget.Task(c.d, c.n); got != c.want {
			t.Errorf("Task(%d, %d) = %d, want %d", c.d, c.n, got, c.want)
		}
	}
}

// TestSynchronizerFormula pins the Corollary 1.2 allowance 80k³.
func TestSynchronizerFormula(t *testing.T) {
	cases := []struct{ d, want int }{
		{1, 80 * 125},    // k = 5
		{3, 80 * 1331},   // k = 11
	}
	for _, c := range cases {
		if got := budget.Synchronizer(c.d); got != c.want {
			t.Errorf("Synchronizer(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestSaturation: degenerate (huge-D) inputs must clamp to MaxInt instead
// of overflowing into a negative or tiny budget — a negative round budget
// would make every run "fail" instantly, a wrapped one would truncate
// legitimate long runs.
func TestSaturation(t *testing.T) {
	huge := 1 << 31
	if got := budget.AU(huge); got != math.MaxInt {
		t.Errorf("AU(2^31) = %d, want MaxInt", got)
	}
	if got := budget.Synchronizer(huge); got != math.MaxInt {
		t.Errorf("Synchronizer(2^31) = %d, want MaxInt", got)
	}
	// Task(2^31, 2^31) ≈ 2·10^14 still fits in 64 bits — it must come back
	// exact, not clamped.
	if got := budget.Task(huge, huge); got != 3000*(huge+31)*31+5000 {
		t.Errorf("Task(2^31, 2^31) = %d, want the exact (non-saturated) value", got)
	}
	if got := budget.Task(math.MaxInt, math.MaxInt); got != math.MaxInt {
		t.Errorf("Task(MaxInt, MaxInt) = %d, want MaxInt", got)
	}
	// MaxInt-adjacent k: k³ alone overflows 64-bit.
	if got := budget.AU(math.MaxInt); got != math.MaxInt {
		t.Errorf("AU(MaxInt) = %d, want MaxInt", got)
	}
}

// TestMonotone: budgets must be non-decreasing in every parameter — a
// larger instance may never get a smaller allowance.
func TestMonotone(t *testing.T) {
	prev := 0
	for k := 1; k < 2000; k += 13 {
		got := budget.AU(k)
		if got < prev {
			t.Fatalf("AU not monotone at k=%d: %d < %d", k, got, prev)
		}
		prev = got
	}
	for _, d := range []int{1, 2, 5, 50} {
		prev = 0
		for n := 1; n < 1_000_000; n *= 4 {
			got := budget.Task(d, n)
			if got < prev {
				t.Fatalf("Task not monotone at d=%d n=%d: %d < %d", d, n, got, prev)
			}
			prev = got
		}
	}
	prev = 0
	for d := 1; d < 3000; d += 17 {
		got := budget.Synchronizer(d)
		if got < prev {
			t.Fatalf("Synchronizer not monotone at d=%d: %d < %d", d, got, prev)
		}
		prev = got
	}
}

// TestPositive: every budget is strictly positive on valid inputs (the
// engines treat the budget as a hard round count; zero would mean instant
// failure).
func TestPositive(t *testing.T) {
	for k := 1; k < 100; k++ {
		if budget.AU(k) <= 0 {
			t.Fatalf("AU(%d) <= 0", k)
		}
	}
	for d := 1; d < 20; d++ {
		for n := 1; n < 100; n += 7 {
			if budget.Task(d, n) <= 0 {
				t.Fatalf("Task(%d, %d) <= 0", d, n)
			}
		}
		if budget.Synchronizer(d) <= 0 {
			t.Fatalf("Synchronizer(%d) <= 0", d)
		}
	}
}
