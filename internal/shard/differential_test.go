package shard_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"thinunison/internal/campaign"
	"thinunison/internal/graph"
	"thinunison/internal/obs"
)

// differentialScenarios spans graph families × schedulers × fault models ×
// algorithms (AU under every scheduler; the synchronous MIS/LE programs
// under the synchronous schedule), sized small enough to run at several
// worker counts in one test.
func differentialScenarios() []campaign.Scenario {
	var scs []campaign.Scenario
	for _, alg := range []campaign.Algorithm{campaign.AlgAU} {
		for _, sched := range []campaign.SchedulerSpec{
			campaign.Synchronous, campaign.RoundRobin, campaign.RandomSubset, campaign.Laggard,
		} {
			for _, f := range []campaign.FaultSpec{{}, {Count: 8, Bursts: 2}} {
				scs = append(scs,
					campaign.Scenario{Family: graph.FamilyCycle, N: 48, Scheduler: sched, Algorithm: alg, Faults: f},
					campaign.Scenario{Family: graph.FamilyBoundedD, N: 96, D: 3, Scheduler: sched, Algorithm: alg, Faults: f},
				)
			}
		}
	}
	for _, alg := range []campaign.Algorithm{campaign.AlgMIS, campaign.AlgLE} {
		for _, f := range []campaign.FaultSpec{{}, {Count: 6, Bursts: 1}} {
			scs = append(scs,
				campaign.Scenario{Family: graph.FamilyStar, N: 32, Scheduler: campaign.Synchronous, Algorithm: alg, Faults: f},
				campaign.Scenario{Family: graph.FamilyRandom, N: 64, Scheduler: campaign.Synchronous, Algorithm: alg, Faults: f},
			)
		}
	}
	return campaign.Finalize(1234, scs)
}

// recordBytes executes sc with the given forced engine parallelism and
// returns its record as canonical JSONL bytes (wall time zeroed, as the
// runner does for reproducible output).
func recordBytes(t *testing.T, sc campaign.Scenario, parallelism int) []byte {
	t.Helper()
	sc.Parallelism = parallelism
	// Canonical also reduces the engine block to its trajectory counters,
	// which must agree across parallelism like every other record field.
	rec := campaign.Execute(context.Background(), sc).Canonical()
	var buf bytes.Buffer
	if err := campaign.AppendJSONL(&buf, rec); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDifferentialCampaignRecords is the top-level differential harness of
// the sharded execution mode: for every scenario in the family × scheduler ×
// fault × algorithm matrix, the full JSONL record of a sharded run at P ∈
// {2, 3, 8} must be byte-identical to the P=1 run of the same seed —
// stabilization rounds, steps, recovery rounds, budgets and verdicts alike.
func TestDifferentialCampaignRecords(t *testing.T) {
	for _, sc := range differentialScenarios() {
		ref := recordBytes(t, sc, 1)
		if !bytes.Contains(ref, []byte(`"ok":true`)) {
			t.Fatalf("scenario %d (%s/%s/%s) did not stabilize at P=1: %s",
				sc.Index, sc.Family, sc.Algorithm, sc.Scheduler.Name(), ref)
		}
		for _, p := range []int{2, 3, 8} {
			got := recordBytes(t, sc, p)
			if !bytes.Equal(ref, got) {
				t.Errorf("scenario %d (%s/%s/%s): P=%d record diverged from P=1:\nP=1: %sP=%d: %s",
					sc.Index, sc.Family, sc.Algorithm, sc.Scheduler.Name(), p, ref, p, got)
			}
		}
	}
}

// TestDifferentialAUClassicParity pins the bridge between the two execution
// modes: AlgAU ignores coin tosses, so for AU scenarios the sharded records
// must also match the classic sequential engine (Parallelism < 0) byte for
// byte. (For the coin-flipping MIS/LE programs the classic shared stream is
// a different — equally valid — probability space, so no such parity is
// expected there.)
func TestDifferentialAUClassicParity(t *testing.T) {
	for _, sc := range differentialScenarios() {
		if sc.Algorithm != campaign.AlgAU {
			continue
		}
		classic := recordBytes(t, sc, -1)
		sharded := recordBytes(t, sc, 4)
		if !bytes.Equal(classic, sharded) {
			t.Errorf("scenario %d (%s/%s): sharded AU diverged from classic:\nclassic: %ssharded: %s",
				sc.Index, sc.Family, sc.Scheduler.Name(), classic, sharded)
		}
	}
}

// TestShardTrajectoryCounterAggregation pins the telemetry side of the
// sharded differential: worker-local counter tallies flushed through the
// coordinator must aggregate to exactly the single-worker totals for every
// trajectory counter. The byte-identity tests above already compare the
// canonical engine block, but they would pass vacuously if Execute stopped
// populating it — this test asserts the counters are present and non-trivial.
func TestShardTrajectoryCounterAggregation(t *testing.T) {
	for _, sc := range differentialScenarios() {
		ref := execAt(t, sc, 1)
		for _, p := range []int{2, 8} {
			got := execAt(t, sc, p)
			if ref.Trajectory() != got.Trajectory() {
				t.Errorf("scenario %d (%s/%s/%s): P=%d trajectory counters diverged from P=1:\nP=1: %+v\nP=%d: %+v",
					sc.Index, sc.Family, sc.Algorithm, sc.Scheduler.Name(), p, ref.Trajectory(), p, got.Trajectory())
			}
		}
		if ref.Steps == 0 || ref.Activated == 0 || ref.Changes == 0 {
			t.Errorf("scenario %d (%s/%s/%s): engine counters are trivial: %+v",
				sc.Index, sc.Family, sc.Algorithm, sc.Scheduler.Name(), ref)
		}
	}
}

// execAt executes sc at the given forced parallelism and returns the raw
// (unreduced) engine counter snapshot from its record.
func execAt(t *testing.T, sc campaign.Scenario, parallelism int) obs.Snapshot {
	t.Helper()
	sc.Parallelism = parallelism
	rec := campaign.Execute(context.Background(), sc)
	if !rec.OK {
		t.Fatalf("scenario %d failed at P=%d: %s", sc.Index, parallelism, rec.Err)
	}
	if rec.Engine == nil {
		t.Fatalf("scenario %d at P=%d has no engine block", sc.Index, parallelism)
	}
	return *rec.Engine
}

// TestRunnerAutoShardingDeterminism checks the run-level/intra-run
// interplay: the same campaign run through runners with different worker
// counts (hence different idle-capacity hints and different automatic shard
// pool sizes) must emit byte-identical record streams.
func TestRunnerAutoShardingDeterminism(t *testing.T) {
	scs := campaign.Concat(7, campaign.Matrix{
		Families:   []graph.Family{graph.FamilyCycle, graph.FamilyStar},
		Sizes:      []int{40},
		Algorithms: []campaign.Algorithm{campaign.AlgAU, campaign.AlgMIS},
	})
	var outs [][]byte
	for _, workers := range []int{1, 2, 7} {
		var buf bytes.Buffer
		var mu sync.Mutex
		r := &campaign.Runner{Workers: workers, OnRecord: func(rec campaign.Record) {
			mu.Lock()
			defer mu.Unlock()
			if err := campaign.AppendJSONL(&buf, rec); err != nil {
				t.Error(err)
			}
		}}
		if _, err := r.Run(context.Background(), scs); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.Bytes())
	}
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Fatalf("runner worker counts produced different record streams")
		}
	}
}
