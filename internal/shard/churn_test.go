package shard_test

import (
	"math/rand"
	"sort"
	"testing"

	"thinunison/internal/graph"
	"thinunison/internal/shard"
)

// verifyClassification checks every node's interior flag and every shard's
// boundary list against a from-scratch recomputation over the (mutated)
// graph, using the partition's own shard-of table.
func verifyClassification(t *testing.T, pt *shard.Partition, g *graph.Graph) {
	t.Helper()
	wantBoundary := make([][]int, pt.P())
	for v := 0; v < g.N(); v++ {
		s := pt.ShardOf(v)
		inter := true
		for _, w := range g.Neighbors(v) {
			if pt.ShardOf(w) != s {
				inter = false
				break
			}
		}
		if got := pt.Interior(v); got != inter {
			t.Fatalf("node %d: Interior=%v, recomputation=%v", v, got, inter)
		}
		if !inter {
			wantBoundary[s] = append(wantBoundary[s], v)
		}
	}
	for s := 0; s < pt.P(); s++ {
		got := pt.Boundary(s)
		if !sort.IntsAreSorted(got) {
			t.Fatalf("shard %d boundary not sorted: %v", s, got)
		}
		if len(got) != len(wantBoundary[s]) {
			t.Fatalf("shard %d boundary = %v, want %v", s, got, wantBoundary[s])
		}
		for i := range got {
			if got[i] != wantBoundary[s][i] {
				t.Fatalf("shard %d boundary = %v, want %v", s, got, wantBoundary[s])
			}
		}
	}
}

// TestReclassifyMatchesRecomputation: after arbitrary edge churn with
// per-endpoint Reclassify calls, the partition's interior/boundary
// classification must equal a from-scratch recomputation over the mutated
// graph (shard bounds held fixed — rebalancing is the engines'
// threshold-repartition's job, not Reclassify's).
func TestReclassifyMatchesRecomputation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base, err := graph.RandomConnected(60, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 7} {
		g, err := graph.New(base.N(), base.Edges())
		if err != nil {
			t.Fatal(err)
		}
		pt := shard.NewPartition(g, p)
		d := graph.NewDelta(g)
		for round := 0; round < 150; round++ {
			u, v := rng.Intn(g.N()), rng.Intn(g.N()-1)
			if v >= u {
				v++
			}
			if d.HasEdge(u, v) {
				if err := d.DeleteEdge(u, v); err != nil {
					t.Fatal(err)
				}
			} else if err := d.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
			_, touched := d.Apply()
			for _, w := range touched {
				pt.Reclassify(w)
			}
			verifyClassification(t, pt, g)
		}
	}
}
