package shard

import (
	"strings"
	"sync/atomic"
	"testing"

	"thinunison/internal/failpoint"
)

// TestPoolSurvivesWorkerPanic pins the worker-replacement contract: a shard
// call that panics is re-raised on the caller as a PoolPanic after the
// barrier, and the pool (workers, channels) stays usable for further Runs —
// the partition is never lost with the worker.
func TestPoolSurvivesWorkerPanic(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()

	// Warm the pool with a clean run.
	var ran atomic.Int64
	pl.Run(func(s int) { ran.Add(1) })
	if ran.Load() != 4 {
		t.Fatalf("warm run covered %d shards, want 4", ran.Load())
	}

	// One shard panics: Run must re-raise PoolPanic, not deadlock.
	caught := func() (v any) {
		defer func() { v = recover() }()
		pl.Run(func(s int) {
			if s == 2 {
				panic("boom")
			}
		})
		return nil
	}()
	pp, ok := caught.(PoolPanic)
	if !ok {
		t.Fatalf("recovered %T %v, want PoolPanic", caught, caught)
	}
	if pp.Shard != 2 || pp.Value != "boom" {
		t.Fatalf("PoolPanic = %+v, want shard 2 value boom", pp)
	}
	if !strings.Contains(pp.String(), "shard 2") {
		t.Fatalf("PoolPanic.String() = %q", pp.String())
	}

	// The pool is still fully functional after the panic.
	ran.Store(0)
	pl.Run(func(s int) { ran.Add(1) })
	if ran.Load() != 4 {
		t.Fatalf("post-panic run covered %d shards, want 4", ran.Load())
	}
}

// TestPoolInlineShardPanic covers the P=1 inline path and the shard-0 path
// of a multi-shard pool: panics on the calling goroutine go through the same
// recover/re-raise machinery.
func TestPoolInlineShardPanic(t *testing.T) {
	for _, p := range []int{1, 3} {
		pl := NewPool(p)
		caught := func() (v any) {
			defer func() { v = recover() }()
			pl.Run(func(s int) {
				if s == 0 {
					panic("zero")
				}
			})
			return nil
		}()
		pp, ok := caught.(PoolPanic)
		if !ok || pp.Shard != 0 || pp.Value != "zero" {
			t.Fatalf("P=%d: recovered %v, want PoolPanic{0, zero}", p, caught)
		}
		pl.Run(func(s int) {}) // still usable
		pl.Close()
	}
}

// TestPoolFailpointPanic arms the shard/worker failpoint site and checks the
// injected panic surfaces as a PoolPanic carrying the Fire value.
func TestPoolFailpointPanic(t *testing.T) {
	failpoint.Arm(failpoint.New(1, []failpoint.Rule{
		{Site: failpoint.ShardWorker, Kind: failpoint.FailPanic, Hits: []uint64{3}},
	}))
	defer failpoint.Disarm()

	pl := NewPool(2)
	defer pl.Close()
	var caught any
	for i := 0; i < 4 && caught == nil; i++ {
		caught = func() (v any) {
			defer func() { v = recover() }()
			pl.Run(func(s int) {})
			return nil
		}()
	}
	pp, ok := caught.(PoolPanic)
	if !ok {
		t.Fatalf("no PoolPanic from armed schedule (caught %v)", caught)
	}
	if _, ok := pp.Value.(failpoint.Fire); !ok {
		t.Fatalf("PoolPanic.Value = %T, want failpoint.Fire", pp.Value)
	}
}
