// Package shard partitions a CSR graph into contiguous node shards and runs
// engine steps across a persistent worker pool, so a single large simulation
// uses every core instead of one.
//
// The paper's step semantics — every activated node reads C_t and all write
// C_{t+1} simultaneously — make a step embarrassingly parallel: within a step
// no node's new state depends on another node's new state. Sharding is
// therefore safe by construction: workers stage their shard's updates into
// per-shard scratch while the configuration stays immutable, and a
// deterministic merge applies the staged updates afterwards. Combined with
// counter-based per-node coin-toss streams (randx.NodeSeed), a sharded run
// is byte-identical to a sequential run of the same seed at any worker
// count.
//
// A Partition splits nodes into P contiguous ID ranges balanced by
// 1 + deg(v) (the per-node cost of a signal computation), and classifies each
// node as interior (every neighbor in the same shard) or boundary. Interior
// updates touch only shard-local state, so the merge may apply them
// concurrently — one worker per shard — for observers that declare
// order-independence; boundary updates and order-sensitive observers go
// through the coordinator in canonical ascending node order.
//
// A Pool is the persistent worker set: P-1 background goroutines plus the
// caller, woken once per phase. Construct it once per engine and Close it
// when the engine is done; a Pool of one shard runs inline and never starts
// a goroutine.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"thinunison/internal/failpoint"
	"thinunison/internal/graph"
	"thinunison/internal/sa"
)

// Partition is a contiguous node partition of a graph into P shards.
// Partitions are immutable and deterministic for a given (graph, P): equal
// inputs yield equal shard bounds, so partitioned runs replay byte-
// identically. P never exceeds the node count.
type Partition struct {
	g        *graph.Graph
	starts   []int   // len P+1; shard s owns nodes [starts[s], starts[s+1])
	shardOf  []int32 // owner shard per node
	interior []bool  // interior[v]: every neighbor of v is in v's shard
	boundary [][]int // per shard, ascending: nodes with a cross-shard edge
}

// NewPartition partitions g into p contiguous shards balanced by node cost
// 1 + deg(v), the per-node cost of a step's signal computation. p is clamped
// to [1, g.N()].
func NewPartition(g *graph.Graph, p int) *Partition {
	n := g.N()
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	pt := &Partition{
		g:        g,
		starts:   make([]int, p+1),
		shardOf:  make([]int32, n),
		interior: make([]bool, n),
		boundary: make([][]int, p),
	}

	// Greedy contiguous cuts against the remaining average: shard s takes
	// nodes until its weight reaches (remaining weight)/(remaining shards),
	// which keeps the heaviest shard within one node of balanced while
	// guaranteeing every shard is non-empty (each shard leaves at least one
	// node per remaining shard).
	total := n + 2*g.M() // sum over v of 1 + deg(v)
	v := 0
	for s := 0; s < p; s++ {
		pt.starts[s] = v
		target := (total + (p - s - 1)) / (p - s)
		acc := 0
		for v < n && (acc == 0 || acc+1+g.Degree(v) <= target) && n-v > p-s-1 {
			acc += 1 + g.Degree(v)
			total -= 1 + g.Degree(v)
			pt.shardOf[v] = int32(s)
			v++
		}
	}
	pt.starts[p] = n

	for u := 0; u < n; u++ {
		s := pt.shardOf[u]
		inter := true
		for _, w := range g.Neighbors(u) {
			if pt.shardOf[w] != s {
				inter = false
				break
			}
		}
		pt.interior[u] = inter
		if !inter {
			pt.boundary[s] = append(pt.boundary[s], u)
		}
	}
	return pt
}

// NewPartitionFromStarts rebuilds a partition of g with explicit shard
// bounds, the restore half of checkpointing: a snapshot records only the
// bounds (see Starts), because the classification tables are a pure function
// of (bounds, current adjacency). Mid-run bounds are NOT derivable from the
// restored graph — a threshold-triggered repartition may have moved them off
// the fresh NewPartition cut — so they must be carried explicitly for a
// restored sharded run to stay byte-identical in layout-sensitive state
// (per-shard frontier words, goodness slabs, observer counters).
func NewPartitionFromStarts(g *graph.Graph, starts []int) (*Partition, error) {
	n := g.N()
	p := len(starts) - 1
	if p < 1 || starts[0] != 0 || starts[p] != n {
		return nil, fmt.Errorf("shard: bad shard bounds %v for %d nodes", starts, n)
	}
	pt := &Partition{
		g:        g,
		starts:   make([]int, p+1),
		shardOf:  make([]int32, n),
		interior: make([]bool, n),
		boundary: make([][]int, p),
	}
	copy(pt.starts, starts)
	for s := 0; s < p; s++ {
		if starts[s+1] <= starts[s] {
			return nil, fmt.Errorf("shard: empty or unordered shard %d in bounds %v", s, starts)
		}
		for v := starts[s]; v < starts[s+1]; v++ {
			pt.shardOf[v] = int32(s)
		}
	}
	for u := 0; u < n; u++ {
		s := pt.shardOf[u]
		inter := true
		for _, w := range g.Neighbors(u) {
			if pt.shardOf[w] != s {
				inter = false
				break
			}
		}
		pt.interior[u] = inter
		if !inter {
			pt.boundary[s] = append(pt.boundary[s], u)
		}
	}
	return pt, nil
}

// P returns the number of shards.
func (pt *Partition) P() int { return len(pt.boundary) }

// N returns the number of nodes.
func (pt *Partition) N() int { return len(pt.shardOf) }

// Range returns the node range [lo, hi) owned by shard s.
func (pt *Partition) Range(s int) (lo, hi int) { return pt.starts[s], pt.starts[s+1] }

// Starts returns the shard bounds: len P+1, shard s owns nodes
// [Starts()[s], Starts()[s+1]). The slice is owned by the partition and
// must not be modified; per-shard frontier sets (internal/frontier) are
// built over it so each shard's dirty bits live in their own word array.
func (pt *Partition) Starts() []int { return pt.starts }

// ShardOf returns the shard owning node v.
func (pt *Partition) ShardOf(v int) int { return int(pt.shardOf[v]) }

// ShardIndex returns the dense owner-shard table (indexed by node). The
// slice is owned by the partition and must not be modified; observers use it
// to maintain per-shard counters.
func (pt *Partition) ShardIndex() []int32 { return pt.shardOf }

// Interior reports whether every neighbor of v lies in v's own shard. An
// interior node's state, counters and neighborhood are touched only by its
// owner shard's worker, so interior updates never race across workers.
func (pt *Partition) Interior(v int) bool { return pt.interior[v] }

// Boundary returns the ascending list of boundary nodes of shard s (nodes
// with at least one cross-shard edge). The slice is owned by the partition.
func (pt *Partition) Boundary(s int) []int { return pt.boundary[s] }

// PlaneSlabs carves one bit-plane slab per shard: slab s has
// sa.PlaneWords(hi−lo) words for the shard's node range [lo, hi), with bit i
// of the slab addressing node lo+i. Each slab is a separate allocation, so
// parallel workers read-modify-write their own cache lines even though shard
// bounds are not 64-aligned — sharing one graph-wide plane would race on the
// boundary words. The word-parallel engines use the slabs for the per-step
// goodness plane; call again after a repartition (the bounds move).
func (pt *Partition) PlaneSlabs() [][]uint64 {
	slabs := make([][]uint64, pt.P())
	for s := range slabs {
		lo, hi := pt.Range(s)
		slabs[s] = make([]uint64, sa.PlaneWords(hi-lo))
	}
	return slabs
}

// ChurnRepartitionDivisor tunes the threshold-triggered repartition of the
// sharded engines: a full repartition runs once the accumulated churn
// weight (1 + deg v per touched endpoint) exceeds 1/4 of the total node
// cost, so its O(n + m) price is amortized against at least Θ(n + m) of
// committed churn while the edge balance never drifts more than a constant
// factor.
const ChurnRepartitionDivisor = 4

// RewireAfterChurn is the sharded engines' shared post-churn repair policy:
// it accumulates the committed batch's weight into *accum and either
// re-classifies the touched endpoints in place (returning the receiver,
// false) or — once the weight crosses the repartition threshold — resets
// the accumulator and builds a fresh partition of the mutated graph
// (returning it, true). When rebuilt is true the caller must migrate its
// partition-shaped state: frontier bitsets (frontier.Set.Rebuild) and any
// per-shard observer counters. Layout-only either way: staged results and
// merges are independent of the partition, so churn runs stay
// byte-identical at every worker count.
func (pt *Partition) RewireAfterChurn(accum *int, touched []int) (next *Partition, rebuilt bool) {
	g := pt.g
	for _, v := range touched {
		*accum += 1 + g.Degree(v)
	}
	if ChurnRepartitionDivisor*(*accum) >= g.N()+2*g.M() {
		*accum = 0
		return NewPartition(g, pt.P()), true
	}
	for _, v := range touched {
		pt.Reclassify(v)
	}
	return pt, false
}

// Reclassify recomputes the interior/boundary classification of node v
// against the graph's current adjacency, in O(deg v + log |boundary|). Call
// it for every endpoint of a topology mutation (a graph.Delta applied at a
// step boundary): an edge change at (u, v) can alter the classification of
// u and v only, since no other node's neighbor set moves. The shard bounds
// themselves stay fixed — the edge-balance drift of sustained churn is
// repaired by a threshold-triggered full repartition in the engines.
func (pt *Partition) Reclassify(v int) {
	s := int(pt.shardOf[v])
	inter := true
	for _, w := range pt.g.Neighbors(v) {
		if int(pt.shardOf[w]) != s {
			inter = false
			break
		}
	}
	if inter == pt.interior[v] {
		return
	}
	pt.interior[v] = inter
	b := pt.boundary[s]
	i := sort.SearchInts(b, v)
	if inter {
		// v left the boundary list.
		if i < len(b) && b[i] == v {
			pt.boundary[s] = append(b[:i], b[i+1:]...)
		}
	} else if i == len(b) || b[i] != v {
		b = append(b, 0)
		copy(b[i+1:], b[i:])
		b[i] = v
		pt.boundary[s] = b
	}
}

// String returns a short description for error messages and traces.
func (pt *Partition) String() string {
	b := 0
	for _, l := range pt.boundary {
		b += len(l)
	}
	return fmt.Sprintf("partition(P=%d, n=%d, boundary=%d)", pt.P(), pt.N(), b)
}

// Pool runs one function across P shards on persistent workers: P-1
// background goroutines (started lazily on first Run) plus the calling
// goroutine, woken once per Run. Run returns only after every shard's call
// has completed, with the usual channel happens-before guarantees in both
// directions — workers see all writes that preceded Run, and the caller sees
// all worker writes when Run returns.
//
// A Pool of one shard runs inline and never starts a goroutine. Close
// terminates the workers; Run must not be called after Close. Pools are not
// safe for concurrent Run calls.
//
// A panic inside fn does not kill the pool: every shard call is recovered so
// the barrier always completes, then the first panic is re-raised on the
// calling goroutine as a PoolPanic. The workers and the partition survive,
// so a caller that recovers the PoolPanic may keep using the pool.
type Pool struct {
	p       int
	work    []chan func(int)
	done    chan struct{}
	started bool
	closed  bool

	mu       sync.Mutex
	panicked *PoolPanic
}

// PoolPanic is the value re-raised by Pool.Run on the calling goroutine when
// a shard call panicked. Value is the original panic payload; if several
// shards panicked in one Run, the first to be recovered wins.
type PoolPanic struct {
	Shard int
	Value any
}

func (p PoolPanic) String() string {
	return fmt.Sprintf("shard %d: %v", p.Shard, p.Value)
}

// NewPool returns a pool over p shards (p < 1 is treated as 1).
func NewPool(p int) *Pool {
	if p < 1 {
		p = 1
	}
	return &Pool{p: p}
}

// P returns the number of shards the pool fans out over.
func (pl *Pool) P() int { return pl.p }

// Run invokes fn(s) for every shard s in [0, P) — shard 0 on the calling
// goroutine, the rest on the pool's workers — and returns when all calls
// have completed.
func (pl *Pool) Run(fn func(shard int)) {
	if pl.closed {
		// A quiet fallback here would silently run only shard 0 while the
		// caller's merge still expects all P shards' staging — corrupted
		// state is worse than a loud failure.
		panic("shard: Run on closed Pool")
	}
	if pl.p == 1 {
		pl.call(fn, 0)
		pl.rethrow()
		return
	}
	if !pl.started {
		pl.start()
	}
	for _, w := range pl.work {
		w <- fn
	}
	pl.call(fn, 0)
	for range pl.work {
		<-pl.done
	}
	pl.rethrow()
}

// call runs one shard with panic isolation: a panicking shard is recorded
// instead of unwinding, so workers always reach their done send and the
// barrier in Run cannot deadlock on a dead worker.
func (pl *Pool) call(fn func(shard int), s int) {
	defer func() {
		if v := recover(); v != nil {
			pl.mu.Lock()
			if pl.panicked == nil {
				pl.panicked = &PoolPanic{Shard: s, Value: v}
			}
			pl.mu.Unlock()
		}
	}()
	if failpoint.Armed() {
		if f := failpoint.Eval(failpoint.ShardWorker); f.Kind == failpoint.FailPanic {
			panic(f)
		}
	}
	fn(s)
}

// rethrow re-raises the first shard panic of this Run, after the barrier, on
// the calling goroutine.
func (pl *Pool) rethrow() {
	pl.mu.Lock()
	p := pl.panicked
	pl.panicked = nil
	pl.mu.Unlock()
	if p != nil {
		panic(*p)
	}
}

func (pl *Pool) start() {
	pl.work = make([]chan func(int), pl.p-1)
	pl.done = make(chan struct{})
	for i := range pl.work {
		pl.work[i] = make(chan func(int))
		s := i + 1
		go func(w chan func(int)) {
			for fn := range w {
				pl.call(fn, s)
				pl.done <- struct{}{}
			}
		}(pl.work[i])
	}
	pl.started = true
}

// Close terminates the pool's workers. It is idempotent and safe on a pool
// that never ran; Run panics after Close.
func (pl *Pool) Close() {
	if pl.closed {
		return
	}
	pl.closed = true
	if !pl.started {
		return
	}
	for _, w := range pl.work {
		close(w)
	}
	pl.started = false
	pl.work = nil
}
