package shard_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"thinunison/internal/campaign"
	"thinunison/internal/graph"
)

// TestSoakConcurrentShardedCampaigns drives several campaigns concurrently,
// each of whose scenarios runs sharded engines (forced P=4), so run-level
// and intra-run parallelism stack: campaign workers × shard workers × the
// repeat loop. Under -race (the CI configuration for this package) it vets
// the pool handoffs, the interior-merge writes and the per-shard monitor
// counters; in any mode it asserts the record streams of all repeats are
// byte-identical.
func TestSoakConcurrentShardedCampaigns(t *testing.T) {
	repeats, campaigns := 3, 4
	if testing.Short() {
		repeats, campaigns = 2, 2
	}
	scs := campaign.Concat(55, campaign.Matrix{
		Families:   []graph.Family{graph.FamilyCycle, graph.FamilyBoundedD},
		Sizes:      []int{64},
		Algorithms: []campaign.Algorithm{campaign.AlgAU, campaign.AlgMIS, campaign.AlgLE},
		Schedulers: []campaign.SchedulerSpec{campaign.Synchronous, campaign.RoundRobin},
		Faults:     []campaign.FaultSpec{{Count: 5, Bursts: 1}},
	})
	for i := range scs {
		scs[i].Parallelism = 4
	}

	run := func() []byte {
		var buf bytes.Buffer
		var mu sync.Mutex
		r := &campaign.Runner{Workers: 3, OnRecord: func(rec campaign.Record) {
			mu.Lock()
			defer mu.Unlock()
			if err := campaign.AppendJSONL(&buf, rec); err != nil {
				t.Error(err)
			}
		}}
		if _, err := r.Run(context.Background(), scs); err != nil {
			t.Error(err)
		}
		return buf.Bytes()
	}

	outs := make([][]byte, repeats*campaigns)
	var wg sync.WaitGroup
	for rep := 0; rep < repeats; rep++ {
		for c := 0; c < campaigns; c++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				outs[slot] = run()
			}(rep*campaigns + c)
		}
		wg.Wait()
	}
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Fatalf("concurrent sharded campaign %d produced a different record stream", i)
		}
	}
}
