package shard

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"thinunison/internal/graph"
)

// testGraphs returns a spread of families and sizes exercising degenerate
// (single node, path), regular (cycle, grid), hub (star) and irregular
// (random connected) shapes.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	gs := map[string]*graph.Graph{}
	add := func(name string, g *graph.Graph, err error) {
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		gs[name] = g
	}
	g, err := graph.New(1, nil)
	add("single", g, err)
	g, err = graph.Path(17)
	add("path17", g, err)
	g, err = graph.Cycle(30)
	add("cycle30", g, err)
	g, err = graph.Star(25)
	add("star25", g, err)
	g, err = graph.Grid(6, 7)
	add("grid6x7", g, err)
	g, err = graph.RandomConnected(64, 0.1, rng)
	add("random64", g, err)
	g, err = graph.BoundedDiameter(100, 4, rng)
	add("boundedD100", g, err)
	return gs
}

// checkPartition asserts the partitioner's invariants: exact cover by
// contiguous non-empty ranges, a consistent owner table, and a sound
// boundary/interior split (no interior node has a cross-shard edge, every
// boundary node has one).
func checkPartition(t *testing.T, g *graph.Graph, pt *Partition) {
	t.Helper()
	p := pt.P()
	if p < 1 || p > g.N() {
		t.Fatalf("P = %d out of range [1, %d]", p, g.N())
	}
	// Exact cover: ranges are contiguous, non-empty, and concatenate to [0, n).
	prev := 0
	for s := 0; s < p; s++ {
		lo, hi := pt.Range(s)
		if lo != prev {
			t.Fatalf("shard %d starts at %d, want %d", s, lo, prev)
		}
		if hi <= lo {
			t.Fatalf("shard %d empty: [%d, %d)", s, lo, hi)
		}
		for v := lo; v < hi; v++ {
			if pt.ShardOf(v) != s {
				t.Fatalf("ShardOf(%d) = %d, want %d", v, pt.ShardOf(v), s)
			}
		}
		prev = hi
	}
	if prev != g.N() {
		t.Fatalf("ranges cover [0, %d), want [0, %d)", prev, g.N())
	}
	// Boundary soundness.
	inBoundary := make(map[int]bool)
	for s := 0; s < p; s++ {
		last := -1
		for _, v := range pt.Boundary(s) {
			if v <= last {
				t.Fatalf("shard %d boundary list not ascending: %v", s, pt.Boundary(s))
			}
			last = v
			if pt.ShardOf(v) != s {
				t.Fatalf("boundary node %d of shard %d owned by shard %d", v, s, pt.ShardOf(v))
			}
			inBoundary[v] = true
		}
	}
	for v := 0; v < g.N(); v++ {
		cross := false
		for _, u := range g.Neighbors(v) {
			if pt.ShardOf(u) != pt.ShardOf(v) {
				cross = true
				break
			}
		}
		if cross == pt.Interior(v) {
			t.Fatalf("node %d: Interior = %v but cross-shard edge = %v", v, pt.Interior(v), cross)
		}
		if cross != inBoundary[v] {
			t.Fatalf("node %d: cross-shard edge = %v but boundary membership = %v", v, cross, inBoundary[v])
		}
	}
}

func TestPartitionInvariants(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, p := range []int{1, 2, 3, 5, 8, 1000} {
			pt := NewPartition(g, p)
			checkPartition(t, g, pt)
			if p <= g.N() && pt.P() != p {
				t.Errorf("%s: NewPartition(p=%d).P() = %d", name, p, pt.P())
			}
			if p > g.N() && pt.P() != g.N() {
				t.Errorf("%s: NewPartition(p=%d).P() = %d, want clamp to %d", name, p, pt.P(), g.N())
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, p := range []int{1, 3, 8} {
			a, b := NewPartition(g, p), NewPartition(g, p)
			if !reflect.DeepEqual(a.starts, b.starts) {
				t.Errorf("%s p=%d: starts differ: %v vs %v", name, p, a.starts, b.starts)
			}
			if !reflect.DeepEqual(a.shardOf, b.shardOf) {
				t.Errorf("%s p=%d: owner tables differ", name, p)
			}
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	// On a graph with uniform weights the heaviest shard must stay close to
	// the average; the greedy cut guarantees within one node's weight.
	g, err := graph.Cycle(1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 8} {
		pt := NewPartition(g, p)
		max := 0
		for s := 0; s < p; s++ {
			lo, hi := pt.Range(s)
			w := 0
			for v := lo; v < hi; v++ {
				w += 1 + g.Degree(v)
			}
			if w > max {
				max = w
			}
		}
		avg := (1000 + 2*g.M()) / p
		if max > avg+3 { // one cycle node weighs 3
			t.Errorf("p=%d: heaviest shard weight %d, average %d", p, max, avg)
		}
	}
}

// FuzzPartition drives the partitioner invariants over arbitrary connected
// graphs and shard counts.
func FuzzPartition(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(2), uint8(30))
	f.Add(int64(2), uint8(50), uint8(8), uint8(5))
	f.Add(int64(3), uint8(1), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, n, p, extra uint8) {
		nodes := int(n)%128 + 1
		rng := rand.New(rand.NewSource(seed))
		// Random connected graph: a random tree plus extra random edges.
		b, err := graph.NewBuilder(nodes)
		if err != nil {
			t.Fatal(err)
		}
		for v := 1; v < nodes; v++ {
			if err := b.AddEdge(v, rng.Intn(v)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < int(extra) && nodes > 1; i++ {
			u, v := rng.Intn(nodes), rng.Intn(nodes)
			if u != v {
				if err := b.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		g := b.Build()
		pt := NewPartition(g, int(p))
		checkPartition(t, g, pt)
	})
}

func TestPoolRunsEveryShardOnce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		pl := NewPool(p)
		counts := make([]int, p)
		var mu sync.Mutex
		for iter := 0; iter < 3; iter++ {
			pl.Run(func(s int) {
				mu.Lock()
				counts[s]++
				mu.Unlock()
			})
		}
		pl.Close()
		for s, c := range counts {
			if c != 3 {
				t.Errorf("p=%d: shard %d ran %d times, want 3", p, s, c)
			}
		}
	}
}

func TestPoolHappensBefore(t *testing.T) {
	// Writes before Run are visible to workers; worker writes are visible
	// after Run returns (the race detector in CI vets this harder).
	pl := NewPool(4)
	defer pl.Close()
	in := make([]int, 4)
	out := make([]int, 4)
	for iter := 0; iter < 10; iter++ {
		for i := range in {
			in[i] = iter + i
		}
		pl.Run(func(s int) { out[s] = in[s] * 2 })
		for i := range out {
			if out[i] != (iter+i)*2 {
				t.Fatalf("iter %d: out[%d] = %d, want %d", iter, i, out[i], (iter+i)*2)
			}
		}
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	pl := NewPool(3)
	pl.Run(func(int) {})
	pl.Close()
	pl.Close()
	pl2 := NewPool(2)
	pl2.Close() // close before any Run is fine
}

func TestPoolRunAfterClosePanics(t *testing.T) {
	// A closed pool must fail loudly: a quiet single-shard fallback would
	// leave the other shards' staged state stale and corrupt the merge.
	for _, p := range []int{1, 3} {
		pl := NewPool(p)
		pl.Run(func(int) {})
		pl.Close()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%d: Run after Close did not panic", p)
				}
			}()
			pl.Run(func(int) {})
		}()
	}
}
