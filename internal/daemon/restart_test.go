package daemon_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"thinunison/internal/campaign"
	"thinunison/internal/daemon"
	"thinunison/internal/daemon/wire"
	"thinunison/internal/daemonclient"
	"thinunison/internal/graph"
)

// stateDaemon brings up a daemon persisting into state, serving on a fresh
// socket beside it.
func stateDaemon(t *testing.T, state string) (*daemon.Server, *daemonclient.Client, string) {
	t.Helper()
	s, err := daemon.New(daemon.Options{StateDir: state, Fleet: 2})
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(state, "d.sock")
	os.Remove(sock)
	if err := s.ListenAndServe(sock); err != nil {
		t.Fatal(err)
	}
	return s, daemonclient.New(sock), sock
}

// TestDaemonKillAndRestart is the crash-safety pin: hard-stop the daemon
// mid-run, corrupt the journal tail the way a torn write would, restart
// against the same state dir — and the run must resume to completion with a
// journal byte-identical to an uninterrupted run's. Nothing is lost, nothing
// is executed twice into the record, no torn bytes survive.
func TestDaemonKillAndRestart(t *testing.T) {
	state, err := os.MkdirTemp("", "unisond")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(state)

	// Round-robin at n=128 costs ~10ms of stepping per trial: slow enough
	// that the kill below lands mid-run with hundreds of milliseconds of
	// margin, fast enough to keep the test snappy.
	const trials = 40
	spec := wire.SubmitSpec{
		Seed: 11,
		Scenario: &wire.ScenarioSpec{
			Family:    string(graph.FamilyCycle),
			N:         128,
			Scheduler: campaign.RoundRobin,
			Algorithm: string(campaign.AlgAU),
			Trials:    trials,
		},
	}
	want := localJSONL(t, spec)

	s1, c1, _ := stateDaemon(t, state)
	info, err := c1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Hard-stop once a prefix is durable but the bulk still remains: every
	// record past the fifth costs ~10ms of stepping plus an fsync, so the
	// kill lands mid-run with a wide margin.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c1.Status(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done >= 5 {
			break
		}
		if st.State != wire.StateQueued && st.State != wire.StateRunning {
			t.Fatalf("run settled %s before the kill", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("run never produced 5 records")
		}
	}
	s1.Kill()

	// Simulate the torn tail a real SIGKILL can leave: garbage half-record
	// bytes after the last fsynced boundary, with no checksum behind them.
	journal := filepath.Join(state, "runs", info.ID+".jsonl")
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"scenario":99999,"family":"cyc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, c2, _ := stateDaemon(t, state)
	defer s2.Kill()
	final, err := c2.Follow(context.Background(), info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != wire.StateDone {
		t.Fatalf("restored run ended %s (%s)", final.State, final.Err)
	}
	if final.Done != trials || final.Scenarios != trials {
		t.Fatalf("restored run %+v, want %d/%d records", final, trials, trials)
	}
	if final.Recovered == 0 || final.Recovered >= trials {
		t.Fatalf("recovered %d records, want a genuine mid-run resume (0 < recovered < %d)", final.Recovered, trials)
	}

	// The combined journal — salvaged prefix plus resumed suffix — must be
	// byte-identical to an uninterrupted in-process run.
	got, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("post-restart journal differs from uninterrupted reference (%d vs %d bytes)", len(got), len(want))
	}

	// And the attach stream replays the same bytes from the beginning: a
	// client cannot tell the run ever crashed.
	var streamed bytes.Buffer
	if _, err := c2.Follow(context.Background(), info.ID, &streamed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), want) {
		t.Error("post-restart attach replay differs from uninterrupted reference")
	}

	// A third restart sees a complete journal: the run is reported done with
	// every record salvaged, and nothing re-executes.
	s2.Kill()
	s3, c3, _ := stateDaemon(t, state)
	defer s3.Kill()
	again, err := c3.Status(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != wire.StateDone || again.Recovered != trials {
		t.Fatalf("second restart: %+v, want done with all %d records salvaged", again, trials)
	}
}

// TestDaemonRestartReportsDeadRuns: persisted runs that can no longer be
// restored — corrupt manifest, manifest referencing an unknown preset — are
// reported failed by the restarted daemon, never silently dropped.
func TestDaemonRestartReportsDeadRuns(t *testing.T) {
	state, err := os.MkdirTemp("", "unisond")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(state)
	runs := filepath.Join(state, "runs")
	if err := os.MkdirAll(runs, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(runs, "torn-manifest.json"), []byte(`{"preset":"smo`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(runs, "lost-preset.json"), []byte(`{"preset":"no-such-preset","seed":1}`), 0o644); err != nil {
		t.Fatal(err)
	}

	s, c, _ := stateDaemon(t, state)
	defer s.Kill()
	for id, wantErr := range map[string]string{
		"torn-manifest": "corrupt manifest",
		"lost-preset":   "unknown preset",
	} {
		info, err := c.Status(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if info.State != wire.StateFailed {
			t.Errorf("%s reported %s, want failed", id, info.State)
		}
		if !strings.Contains(info.Err, wantErr) {
			t.Errorf("%s error %q does not mention %q", id, info.Err, wantErr)
		}
	}
}

// TestDaemonRestartCompletedRun: a cleanly finished run survives a restart
// in its final state — all records salvaged, stream replayable, nothing
// re-executed or re-queued.
func TestDaemonRestartCompletedRun(t *testing.T) {
	state, err := os.MkdirTemp("", "unisond")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(state)

	spec := tinySpec(5, 13)
	want := localJSONL(t, spec)
	s1, c1, _ := stateDaemon(t, state)
	info, err := c1.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != wire.StateDone {
		t.Fatalf("run ended %s", info.State)
	}
	s1.Kill()

	s2, c2, _ := stateDaemon(t, state)
	defer s2.Kill()
	var streamed bytes.Buffer
	final, err := c2.Follow(context.Background(), info.ID, &streamed)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != wire.StateDone || final.Recovered != 5 {
		t.Fatalf("restored run %+v, want done with 5 salvaged records", final)
	}
	if !bytes.Equal(streamed.Bytes(), want) {
		t.Error("restored stream differs from reference")
	}
}

// FuzzDaemonJournalRestart lifts the FuzzOpenResumable robustness contract
// to the whole daemon: arbitrary truncation and a byte flip applied to a
// run's journal and checksum sidecar must leave a restarted daemon able to
// account for the run — resumed to completion with the journal restored
// byte-identical to the uninterrupted reference, or reported failed — and
// never panicking, hanging, or serving torn records. The one documented
// carve-out: the sidecar is advisory, so a flip whose checksum entry was
// truncated away and which keeps the line parseable and in-order is
// accepted on salvage — even then the damage must stay confined to that
// single record.
func FuzzDaemonJournalRestart(f *testing.F) {
	state, err := os.MkdirTemp("", "unisond")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(state)

	// Build one pristine persisted run to corrupt per fuzz execution.
	spec := tinySpec(6, 17)
	s, err := daemon.New(daemon.Options{StateDir: state, Fleet: 2})
	if err != nil {
		f.Fatal(err)
	}
	sock := filepath.Join(state, "d.sock")
	if err := s.ListenAndServe(sock); err != nil {
		f.Fatal(err)
	}
	info, err := daemonclient.New(sock).Run(context.Background(), spec, nil)
	if err != nil {
		f.Fatal(err)
	}
	if info.State != wire.StateDone {
		f.Fatalf("seed run ended %s", info.State)
	}
	s.Kill()
	journal, err := os.ReadFile(filepath.Join(state, "runs", info.ID+".jsonl"))
	if err != nil {
		f.Fatal(err)
	}
	sidecar, err := os.ReadFile(filepath.Join(state, "runs", info.ID+".jsonl.crc"))
	if err != nil {
		f.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(state, "runs", info.ID+".json"))
	if err != nil {
		f.Fatal(err)
	}

	f.Add(uint16(len(journal)), uint16(len(sidecar)), uint16(0), byte(0))
	f.Add(uint16(10), uint16(len(sidecar)), uint16(0), byte(0))
	f.Add(uint16(len(journal)), uint16(3), uint16(5), byte(0xFF))
	f.Add(uint16(0), uint16(0), uint16(0), byte(1))
	f.Fuzz(func(t *testing.T, cutJ, cutC, flipAt uint16, flip byte) {
		dir, err := os.MkdirTemp("", "unisond-fuzz")
		if err != nil {
			t.Fatal(err)
		}
		defer os.RemoveAll(dir)
		runs := filepath.Join(dir, "runs")
		if err := os.MkdirAll(runs, 0o755); err != nil {
			t.Fatal(err)
		}
		j := append([]byte(nil), journal[:min(int(cutJ), len(journal))]...)
		flipped := -1 // reference line index hit by the flip, -1 if none
		if len(j) > 0 && flip != 0 {
			pos := int(flipAt) % len(j)
			j[pos] ^= flip
			flipped = 0
			for _, ln := range bytes.SplitAfter(journal, []byte("\n")) {
				if pos < len(ln) {
					break
				}
				pos -= len(ln)
				flipped++
			}
		}
		c := sidecar[:min(int(cutC), len(sidecar))]
		if err := os.WriteFile(filepath.Join(runs, info.ID+".json"), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(runs, info.ID+".jsonl"), j, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(runs, info.ID+".jsonl.crc"), c, 0o644); err != nil {
			t.Fatal(err)
		}

		srv, err := daemon.New(daemon.Options{StateDir: dir, Fleet: 2})
		if err != nil {
			t.Fatalf("restart refused corrupted state: %v", err)
		}
		sock := filepath.Join(dir, "d.sock")
		if err := srv.ListenAndServe(sock); err != nil {
			t.Fatal(err)
		}
		defer srv.Kill()
		final, err := daemonclient.New(sock).Follow(context.Background(), info.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		switch final.State {
		case wire.StateDone:
			got, err := os.ReadFile(filepath.Join(runs, info.ID+".jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(got, journal) {
				return
			}
			// The flip was only guaranteed detectable while its checksum
			// entry survived the sidecar cut (each entry is "%08x\n" = 9
			// bytes). With the entry gone the flipped record may be salvaged
			// as-is — but the damage must be confined to that one line.
			if flipped < 0 || flipped < int(cutC)/9 {
				t.Fatalf("resumed journal differs from reference despite an intact checksum over the corruption")
			}
			gotLines := bytes.SplitAfter(got, []byte("\n"))
			wantLines := bytes.SplitAfter(journal, []byte("\n"))
			if len(gotLines) != len(wantLines) {
				t.Fatalf("resumed journal has %d lines, reference %d", len(gotLines), len(wantLines))
			}
			for i := range wantLines {
				if i == flipped {
					if !json.Valid(bytes.TrimSuffix(gotLines[i], []byte("\n"))) {
						t.Fatalf("salvaged flipped record is not valid JSON: %q", gotLines[i])
					}
					continue
				}
				if !bytes.Equal(gotLines[i], wantLines[i]) {
					t.Fatalf("line %d differs from reference beyond the flipped record %d", i, flipped)
				}
			}
		case wire.StateFailed:
			if final.Err == "" {
				t.Fatal("failed run reported without an error")
			}
		default:
			t.Fatalf("run settled %s", final.State)
		}
	})
}

// TestDaemonResumeAdmissionOrder: restored incomplete runs resume in their
// original submission order once the restarted daemon starts serving.
func TestDaemonResumeAdmissionOrder(t *testing.T) {
	state, err := os.MkdirTemp("", "unisond")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(state)

	s1, c1, _ := stateDaemon(t, state)
	var ids []string
	for i := 0; i < 3; i++ {
		info, err := c1.Submit(tinySpec(4, int64(20+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
		if got := waitState(t, c1, info.ID); got.State != wire.StateDone {
			t.Fatalf("run %d ended %s", i, got.State)
		}
	}
	s1.Kill()

	// Truncate every journal to force a resume of all three, then restart:
	// List must report them in submission order and all must complete.
	for _, id := range ids {
		path := filepath.Join(state, "runs", id+".jsonl")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, c2, _ := stateDaemon(t, state)
	defer s2.Kill()
	runs, err := c2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(ids) {
		t.Fatalf("%d runs listed after restart, want %d", len(runs), len(ids))
	}
	for i, info := range runs {
		if info.ID != ids[i] {
			t.Errorf("list position %d: %s, want %s (submission order lost)", i, info.ID, ids[i])
		}
		if got := waitState(t, c2, info.ID); got.State != wire.StateDone {
			t.Errorf("restored run %s ended %s (%s)", info.ID, got.State, got.Err)
		}
	}
}
