package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"thinunison/internal/campaign"
	"thinunison/internal/daemon/wire"
	"thinunison/internal/obs"
	"thinunison/internal/snapshot"
)

// errClientCancel is the cancellation cause installed by the cancel op.
var errClientCancel = errors.New("daemon: run cancelled by client")

// run is one admitted submission: its scenario set, its durable journal, its
// in-memory event log, and the subscribers attached to it.
type run struct {
	id        string
	spec      wire.SubmitSpec
	scenarios []campaign.Scenario // full set
	remaining []campaign.Scenario // not yet durably recorded (resume tail)
	journal   *campaign.ResumableLog
	metrics   obs.Metrics // per-run engine-counter aggregate

	mu        sync.Mutex
	state     string
	log       []wire.Event // durable record events, seq 1..len(log)
	failures  int
	recovered int // records salvaged from the journal on restore
	errMsg    string
	cancel    context.CancelCauseFunc
	subs      map[*subscriber]struct{}

	finished     chan struct{} // closed at the terminal transition
	finishedOnce sync.Once
}

// subscriber is one attached stream. Record delivery is cursor-based over
// the run's retained log (lossless; the reader's own pace bounds it);
// metrics snapshots go through a one-slot latest-wins buffer where an
// overwrite of an unread snapshot counts as a dropped frame. Neither path
// ever blocks the run.
type subscriber struct {
	notify  chan struct{} // cap 1: wake the stream loop
	dropped atomic.Uint64

	mu      sync.Mutex
	pending *obs.Snapshot
}

func (sub *subscriber) wake() {
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// offer replaces the pending metrics snapshot, counting an unread casualty.
func (sub *subscriber) offer(snap obs.Snapshot) {
	sub.mu.Lock()
	if sub.pending != nil {
		sub.dropped.Add(1)
	}
	sub.pending = &snap
	sub.mu.Unlock()
	sub.wake()
}

// take claims the pending metrics snapshot, if any.
func (sub *subscriber) take() (*obs.Snapshot, bool) {
	sub.mu.Lock()
	snap := sub.pending
	sub.pending = nil
	sub.mu.Unlock()
	return snap, snap != nil
}

// newRun builds a fresh run from a validated submission: manifest persisted
// atomically, journal opened (both only with a state dir), state queued.
func (s *Server) newRun(id string, spec wire.SubmitSpec, scenarios []campaign.Scenario) (*run, error) {
	r := &run{
		id:        id,
		spec:      spec,
		scenarios: scenarios,
		remaining: scenarios,
		state:     wire.StateQueued,
		subs:      make(map[*subscriber]struct{}),
		finished:  make(chan struct{}),
	}
	if s.opt.StateDir == "" {
		return r, nil
	}
	manifest, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("daemon: marshal manifest: %w", err)
	}
	err = snapshot.AtomicWriteFile(s.manifestPath(id), func(w io.Writer) error {
		_, werr := w.Write(manifest)
		return werr
	})
	if err != nil {
		return nil, err
	}
	r.journal, err = campaign.OpenResumable(s.journalPath(id))
	if err != nil {
		os.Remove(s.manifestPath(id))
		return nil, fmt.Errorf("daemon: open journal: %w", err)
	}
	return r, nil
}

// restoreRun rebuilds one persisted run after a daemon restart: the manifest
// re-expands to the same deterministic scenario set, OpenResumable salvages
// the longest verified journal prefix (torn tails and bit rot truncated),
// the in-memory event log is rebuilt from the salvaged lines so attach
// replay works across restarts, and the run is left terminal (all records
// present) or queued for resume (the missing tail re-runs).
func (s *Server) restoreRun(id string) (*run, error) {
	manifest, err := os.ReadFile(s.manifestPath(id))
	if err != nil {
		return nil, fmt.Errorf("daemon: run %s: read manifest: %w", id, err)
	}
	var spec wire.SubmitSpec
	if err := json.Unmarshal(manifest, &spec); err != nil {
		return nil, fmt.Errorf("daemon: run %s: corrupt manifest: %w", id, err)
	}
	scenarios, err := spec.Scenarios()
	if err != nil {
		return nil, fmt.Errorf("daemon: run %s: re-expand: %w", id, err)
	}
	journal, err := campaign.OpenResumable(s.journalPath(id))
	if err != nil {
		return nil, fmt.Errorf("daemon: run %s: reopen journal: %w", id, err)
	}
	r := &run{
		id:        id,
		spec:      spec,
		scenarios: scenarios,
		journal:   journal,
		state:     wire.StateQueued,
		subs:      make(map[*subscriber]struct{}),
		finished:  make(chan struct{}),
		recovered: journal.Recovered,
	}
	// Rebuild the event log from the salvaged prefix: OpenResumable already
	// truncated the file back to a verified record boundary, so its content
	// is exactly the lines to replay.
	data, err := os.ReadFile(s.journalPath(id))
	if err != nil {
		journal.Close()
		return nil, fmt.Errorf("daemon: run %s: reread journal: %w", id, err)
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // cannot happen: the salvaged prefix ends on a boundary
		}
		line := data[:nl]
		var rec campaign.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			break
		}
		if !rec.OK {
			r.failures++
		}
		r.log = append(r.log, wire.Event{
			Seq:    uint64(len(r.log) + 1),
			Type:   wire.EventRecord,
			Record: json.RawMessage(line),
		})
		data = data[nl+1:]
	}
	for _, sc := range scenarios {
		if !journal.Done(sc) {
			r.remaining = append(r.remaining, sc)
		}
	}
	if len(r.remaining) == 0 {
		r.settleTerminal(nil)
	}
	return r, nil
}

// deadRun accounts for a persisted run that can no longer be restored
// (unreadable manifest, failed re-expansion): it is reported failed rather
// than silently dropped.
func (s *Server) deadRun(id string, cause error) *run {
	r := &run{
		id:       id,
		state:    wire.StateFailed,
		errMsg:   cause.Error(),
		subs:     make(map[*subscriber]struct{}),
		finished: make(chan struct{}),
	}
	r.finishedOnce.Do(func() { close(r.finished) })
	return r
}

// stateLocked reads the run state under the run's own lock (callers may hold
// the server lock; the two never nest the other way).
func (r *run) stateLocked() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// info snapshots the run's client-visible state.
func (r *run) info() wire.RunInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return wire.RunInfo{
		ID:        r.id,
		State:     r.state,
		Preset:    r.spec.Preset,
		Seed:      r.spec.Seed,
		Scenarios: len(r.scenarios),
		Done:      len(r.log),
		Failures:  r.failures,
		Recovered: r.recovered,
		Err:       r.errMsg,
	}
}

// terminal reports whether the run has reached a final state.
func (r *run) terminal() bool {
	select {
	case <-r.finished:
		return true
	default:
		return false
	}
}

// eventAt returns the durable event at 0-based cursor, if present.
func (r *run) eventAt(cursor uint64) (wire.Event, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cursor >= uint64(len(r.log)) {
		return wire.Event{}, false
	}
	return r.log[cursor], true
}

func (r *run) subscribe() *subscriber {
	sub := &subscriber{notify: make(chan struct{}, 1)}
	r.mu.Lock()
	r.subs[sub] = struct{}{}
	r.mu.Unlock()
	return sub
}

func (r *run) unsubscribe(sub *subscriber) {
	r.mu.Lock()
	delete(r.subs, sub)
	r.mu.Unlock()
}

// append makes one record durable and visible: journal first (fsync + CRC
// sidecar — the record is not streamed unless it is durable), then the event
// log, then every subscriber is offered the fresh per-run metrics snapshot
// and woken. Called on the Runner's results goroutine, in scenario-index
// order, which is exactly the append-only prefix the journal demands.
func (r *run) append(rec campaign.Record) {
	var buf bytes.Buffer
	if err := campaign.AppendJSONL(&buf, rec); err != nil {
		r.failRun(err)
		return
	}
	if r.journal != nil {
		if err := r.journal.Append(rec); err != nil {
			r.failRun(err)
			return
		}
	}
	line := bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
	snap := r.metrics.Snapshot()
	r.mu.Lock()
	r.log = append(r.log, wire.Event{
		Seq:    uint64(len(r.log) + 1),
		Type:   wire.EventRecord,
		Record: json.RawMessage(line),
	})
	if !rec.OK {
		r.failures++
	}
	for sub := range r.subs {
		sub.offer(snap)
	}
	r.mu.Unlock()
}

// failRun records a run-level fault (journal write failure, encoding
// failure) and aborts the run: the harness cannot stand behind further
// records once durability is gone.
func (r *run) failRun(err error) {
	r.mu.Lock()
	if r.errMsg == "" {
		r.errMsg = err.Error()
	}
	cancel := r.cancel
	r.mu.Unlock()
	if cancel != nil {
		cancel(err)
	}
}

// requestCancel asks the run to stop: a queued run settles cancelled in
// place, a running one has its context cut and settles when its executor
// returns. Terminal runs ignore it.
func (r *run) requestCancel() {
	r.mu.Lock()
	if r.state == wire.StateQueued {
		r.state = wire.StateCancelled
		r.mu.Unlock()
		r.settleJournal()
		r.finishedOnce.Do(func() { close(r.finished) })
		return
	}
	cancel := r.cancel
	r.mu.Unlock()
	if cancel != nil {
		cancel(errClientCancel)
	}
}

// finalize resolves the terminal state once the executor returns.
func (r *run) finalize(runErr error) {
	r.settleTerminal(runErr)
}

// settleTerminal computes the final state, closes the journal and wakes
// every waiter. runErr is the executor's context error (nil for a run that
// ran its scenario set to the end).
func (r *run) settleTerminal(runErr error) {
	r.mu.Lock()
	switch {
	case r.errMsg != "":
		r.state = wire.StateFailed
	case runErr != nil:
		r.state = wire.StateCancelled
	case r.failures > 0:
		r.state = wire.StateFailed
		r.errMsg = fmt.Sprintf("daemon: %d of %d scenario(s) failed", r.failures, len(r.scenarios))
	default:
		r.state = wire.StateDone
	}
	r.mu.Unlock()
	r.settleJournal()
	r.finishedOnce.Do(func() { close(r.finished) })
}

// settleJournal closes the journal exactly once.
func (r *run) settleJournal() {
	r.mu.Lock()
	j := r.journal
	r.journal = nil
	r.mu.Unlock()
	if j != nil {
		j.Close()
	}
}
