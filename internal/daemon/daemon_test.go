package daemon_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	gort "runtime"
	"strings"
	"testing"
	"time"

	"thinunison/internal/campaign"
	"thinunison/internal/daemon"
	"thinunison/internal/daemon/wire"
	"thinunison/internal/daemonclient"
	"thinunison/internal/failpoint"
	"thinunison/internal/graph"
)

// tinySpec is a fast AU submission: trials of an 8-node cycle under the
// synchronous scheduler, each stabilizing in microseconds.
func tinySpec(trials int, seed int64) wire.SubmitSpec {
	return wire.SubmitSpec{
		Seed: seed,
		Scenario: &wire.ScenarioSpec{
			Family:    string(graph.FamilyCycle),
			N:         8,
			Scheduler: campaign.Synchronous,
			Algorithm: string(campaign.AlgAU),
			Trials:    trials,
		},
	}
}

// localJSONL is the in-process reference: the exact bytes a local campaign
// run of spec would emit, which daemon-streamed output must match.
func localJSONL(t *testing.T, spec wire.SubmitSpec) []byte {
	t.Helper()
	scs, err := spec.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	runner := &campaign.Runner{
		Workers: 2,
		Timing:  false,
		OnRecord: func(rec campaign.Record) {
			if err := campaign.AppendJSONL(&buf, rec); err != nil {
				t.Error(err)
			}
		},
	}
	if _, err := runner.Run(context.Background(), scs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startDaemon brings up a served daemon on a fresh unix socket (in a short
// tempdir — unix socket paths have a ~100-byte limit, so not t.TempDir) and
// returns it with a connected client. Shutdown and cleanup are registered.
func startDaemon(t *testing.T, opt daemon.Options) (*daemon.Server, *daemonclient.Client) {
	t.Helper()
	dir, err := os.MkdirTemp("", "unisond")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	s, err := daemon.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(dir, "d.sock")
	if err := s.ListenAndServe(sock); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Kill)
	return s, daemonclient.New(sock)
}

// waitState polls a run until it leaves the live states, returning its final
// info.
func waitState(t *testing.T, c *daemonclient.Client, id string) wire.RunInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		info, err := c.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != wire.StateQueued && info.State != wire.StateRunning {
			return info
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s did not settle", id)
	return wire.RunInfo{}
}

// TestDaemonEndToEnd covers the whole client surface against one ephemeral
// daemon: ping, submit+follow with byte-identical streamed records, status,
// list, metrics, replay-from-cursor, and the client-visible error paths.
func TestDaemonEndToEnd(t *testing.T) {
	_, c := startDaemon(t, daemon.Options{Fleet: 4})
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	spec := tinySpec(6, 42)
	want := localJSONL(t, spec)

	var got bytes.Buffer
	info, err := c.Run(context.Background(), spec, &got)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != wire.StateDone {
		t.Fatalf("run ended %s (%s)", info.State, info.Err)
	}
	if info.Scenarios != 6 || info.Done != 6 || info.Failures != 0 {
		t.Fatalf("final info %+v", info)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("daemon-streamed records differ from in-process run:\n got %q\nwant %q", got.Bytes(), want)
	}

	// Re-attach from a cursor: the stream must replay exactly the suffix.
	var tail bytes.Buffer
	if _, err := c.Attach(context.Background(), info.ID, 4, func(ev wire.Event) error {
		if ev.Type == wire.EventRecord {
			tail.Write(append(ev.Record, '\n'))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(want, []byte("\n"))
	wantTail := bytes.Join(lines[4:], nil)
	if !bytes.Equal(tail.Bytes(), wantTail) {
		t.Errorf("cursor replay differs:\n got %q\nwant %q", tail.Bytes(), wantTail)
	}

	if st, err := c.Status(info.ID); err != nil || st.State != wire.StateDone {
		t.Fatalf("status: %+v, %v", st, err)
	}
	runs, err := c.List()
	if err != nil || len(runs) != 1 || runs[0].ID != info.ID {
		t.Fatalf("list: %+v, %v", runs, err)
	}
	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Steps == 0 {
		t.Error("daemon-wide metrics show zero steps after a completed run")
	}

	// Error paths: unknown run, empty submission, both preset and scenario,
	// duplicate client-chosen id, invalid id.
	if _, err := c.Status("nope"); err == nil || !strings.Contains(err.Error(), "unknown run") {
		t.Errorf("unknown run: %v", err)
	}
	if _, err := c.Submit(wire.SubmitSpec{}); err == nil || !strings.Contains(err.Error(), "empty submission") {
		t.Errorf("empty submission: %v", err)
	}
	both := tinySpec(1, 1)
	both.Preset = "smoke"
	if _, err := c.Submit(both); err == nil || !strings.Contains(err.Error(), "both a preset and a custom scenario") {
		t.Errorf("ambiguous submission: %v", err)
	}
	named := tinySpec(1, 1)
	named.ID = "Bad ID"
	if _, err := c.Submit(named); err == nil || !strings.Contains(err.Error(), "bad run id") {
		t.Errorf("invalid id: %v", err)
	}
	named.ID = "pinned"
	if _, err := c.Submit(named); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(named); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("duplicate id: %v", err)
	}
	waitState(t, c, "pinned")
}

// TestDaemonFailedRunReported: a submission whose scenarios fail (churn
// demands AlgAU) ends in the failed state with per-record failures counted —
// not silently done.
func TestDaemonFailedRunReported(t *testing.T) {
	_, c := startDaemon(t, daemon.Options{Fleet: 2})
	spec := wire.SubmitSpec{
		Seed: 3,
		Scenario: &wire.ScenarioSpec{
			Family:    string(graph.FamilyCycle),
			N:         8,
			Scheduler: campaign.Synchronous,
			Algorithm: string(campaign.AlgMIS),
			Churn:     campaign.ChurnSpec{Period: 4, Flips: 1, Events: 2},
			Trials:    2,
		},
	}
	info, err := c.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != wire.StateFailed || info.Failures != 2 {
		t.Fatalf("final info %+v, want failed with 2 failures", info)
	}
	if !strings.Contains(info.Err, "2 of 2 scenario(s) failed") {
		t.Errorf("run error %q", info.Err)
	}
}

// stallNextRun arms the campaign/poll failpoint so the next scenario poll
// blocks (interruptibly) for up to stall — a deterministic way to hold a run
// in the running state.
func stallNextRun(t *testing.T, stall time.Duration) {
	t.Helper()
	failpoint.Arm(failpoint.New(0, []failpoint.Rule{
		{Site: failpoint.CampaignPoll, Kind: failpoint.FailStall, Hits: []uint64{1}, Stall: stall},
	}))
	t.Cleanup(failpoint.Disarm)
}

// TestDaemonAdmissionControl: with one active slot and no queue, a second
// submission while the first run executes is rejected with the busy error,
// and a cancel frees the slot.
func TestDaemonAdmissionControl(t *testing.T) {
	stallNextRun(t, time.Minute)
	_, c := startDaemon(t, daemon.Options{Fleet: 1, MaxActive: 1, MaxQueue: -1})

	held, err := c.Submit(tinySpec(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(tinySpec(1, 8)); err == nil || !strings.Contains(err.Error(), "busy") {
		t.Fatalf("saturated submit: %v, want busy", err)
	}

	// Cancel cuts the stalled run's context; the failpoint wait is
	// interruptible, so the slot frees promptly and admission resumes.
	if _, err := c.Cancel(held.ID); err != nil {
		t.Fatal(err)
	}
	info := waitState(t, c, held.ID)
	if info.State != wire.StateCancelled {
		t.Fatalf("held run ended %s", info.State)
	}
	failpoint.Disarm()
	next, err := c.Submit(tinySpec(1, 9))
	if err != nil {
		t.Fatalf("submit after slot freed: %v", err)
	}
	if got := waitState(t, c, next.ID); got.State != wire.StateDone {
		t.Fatalf("post-cancel run ended %s (%s)", got.State, got.Err)
	}
}

// TestDaemonCancelQueued: cancelling a run that never left the queue settles
// it cancelled without executing anything.
func TestDaemonCancelQueued(t *testing.T) {
	stallNextRun(t, time.Minute)
	_, c := startDaemon(t, daemon.Options{Fleet: 1, MaxActive: 1})
	held, err := c.Submit(tinySpec(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(tinySpec(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := c.Status(queued.ID); st.State != wire.StateQueued {
		t.Fatalf("second run %s, want queued", st.State)
	}
	if _, err := c.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if info := waitState(t, c, queued.ID); info.State != wire.StateCancelled || info.Done != 0 {
		t.Fatalf("queued cancel: %+v", info)
	}
	if _, err := c.Cancel(held.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, c, held.ID)
}

// TestDaemonShutdownOp: the client shutdown op surfaces on
// ShutdownRequested with its drain flag — the unisond main loop's signal.
func TestDaemonShutdownOp(t *testing.T) {
	s, c := startDaemon(t, daemon.Options{Fleet: 1})
	if err := c.Shutdown(true); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.ShutdownRequested():
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown op did not surface")
	}
	if !s.DrainRequested() {
		t.Fatal("drain flag lost")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx, s.DrainRequested()); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
}

// TestDaemonSocketHijackRefused: a second daemon must refuse to steal a live
// daemon's socket, and must replace a stale one.
func TestDaemonSocketHijackRefused(t *testing.T) {
	dir, err := os.MkdirTemp("", "unisond")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "d.sock")

	s1, err := daemon.New(daemon.Options{Fleet: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.ListenAndServe(sock); err != nil {
		t.Fatal(err)
	}
	s2, err := daemon.New(daemon.Options{Fleet: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.ListenAndServe(sock); err == nil || !strings.Contains(err.Error(), "live daemon") {
		t.Fatalf("hijack attempt: %v", err)
	}
	s1.Kill()

	// s1 is down but its socket file lingers: the next daemon takes over.
	s3, err := daemon.New(daemon.Options{Fleet: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.ListenAndServe(sock); err != nil {
		t.Fatalf("stale takeover: %v", err)
	}
	s3.Kill()
}

// TestDaemonGoroutinePin: repeated daemon start/serve/run/shutdown cycles
// return the process to its goroutine baseline — a long-lived host process
// embedding daemons cannot leak (same contract as runtime.Shutdown).
func TestDaemonGoroutinePin(t *testing.T) {
	baseline := gort.NumGoroutine()
	for cycle := 0; cycle < 3; cycle++ {
		dir, err := os.MkdirTemp("", "unisond")
		if err != nil {
			t.Fatal(err)
		}
		s, err := daemon.New(daemon.Options{Fleet: 2})
		if err != nil {
			t.Fatal(err)
		}
		sock := filepath.Join(dir, "d.sock")
		if err := s.ListenAndServe(sock); err != nil {
			t.Fatal(err)
		}
		c := daemonclient.New(sock)
		if _, err := c.Run(context.Background(), tinySpec(2, int64(cycle+1)), nil); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := s.Shutdown(ctx, false); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		cancel()
		os.RemoveAll(dir)
		if err := awaitGoroutines(baseline); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
}

// awaitGoroutines polls until the process goroutine count drops back to at
// most baseline (goroutine exits are asynchronous after wg release under
// -race, so a single instantaneous sample can flake).
func awaitGoroutines(baseline int) error {
	deadline := time.Now().Add(10 * time.Second)
	n := 0
	for time.Now().Before(deadline) {
		if n = gort.NumGoroutine(); n <= baseline {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("%d goroutines still running (baseline %d)", n, baseline)
}

// rawAttach dials the daemon socket directly and sends an attach request,
// returning the open connection after the response frame — a client the test
// can deliberately refuse to read from.
func rawAttach(t *testing.T, sock, id string) net.Conn {
	t.Helper()
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.Request{V: wire.Version, Op: wire.OpAttach, Run: id}); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadResponse(conn)
	if err != nil || !resp.OK {
		t.Fatalf("attach: %+v, %v", resp, err)
	}
	return conn
}

// TestDaemonSlowReaderBackpressure is the backpressure pin: a reader that
// stops consuming its stream mid-run must never block the engines or other
// clients — the run and a concurrently submitted run both complete while the
// reader stalls — and when it finally drains it finds dropped-frame counts
// on the lossy metrics channel.
func TestDaemonSlowReaderBackpressure(t *testing.T) {
	dir, err := os.MkdirTemp("", "unisond")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	s, err := daemon.New(daemon.Options{Fleet: 4})
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(dir, "d.sock")
	if err := s.ListenAndServe(sock); err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	c := daemonclient.New(sock)

	// Enough records to overflow any socket send buffer, so the attach
	// stream's writer genuinely blocks on the stalled reader while the run
	// keeps appending (and offering metrics frames that then drop).
	big, err := c.Submit(tinySpec(1200, 5))
	if err != nil {
		t.Fatal(err)
	}
	slow := rawAttach(t, sock, big.ID)
	defer slow.Close()

	// While the slow reader stalls, another client's run must submit,
	// stream and finish untouched.
	var side bytes.Buffer
	sideInfo, err := c.Run(context.Background(), tinySpec(4, 6), &side)
	if err != nil {
		t.Fatal(err)
	}
	if sideInfo.State != wire.StateDone {
		t.Fatalf("side run ended %s while slow reader attached", sideInfo.State)
	}
	if !bytes.Equal(side.Bytes(), localJSONL(t, tinySpec(4, 6))) {
		t.Error("side run records corrupted while slow reader attached")
	}
	if got := waitState(t, c, big.ID); got.State != wire.StateDone {
		t.Fatalf("big run ended %s (%s)", got.State, got.Err)
	}

	// Drain the stalled stream: every record must still arrive in order
	// (record events are lossless), and the cumulative dropped counter must
	// show the metrics frames the reader lost to backpressure.
	var dropped uint64
	records := 0
	for {
		ev, err := wire.ReadEvent(slow)
		if err != nil {
			t.Fatalf("drain after %d records: %v", records, err)
		}
		if ev.Dropped > dropped {
			dropped = ev.Dropped
		}
		if ev.Type == wire.EventRecord {
			records++
			if int(ev.Seq) != records {
				t.Fatalf("record %d arrived with seq %d", records, ev.Seq)
			}
		}
		if ev.Type == wire.EventEOF {
			break
		}
	}
	if records != 1200 {
		t.Errorf("lossless record channel delivered %d of 1200 records", records)
	}
	if dropped == 0 {
		t.Error("slow reader saw no backpressure drops on the lossy metrics channel")
	}
}

// TestDaemonSoak is the concurrency soak (run it under -race): many clients
// submitting, following, re-attaching and cancelling against one daemon at
// once. Every run must settle, every follower must see a coherent stream,
// and shutdown afterwards must be clean.
func TestDaemonSoak(t *testing.T) {
	s, c := startDaemon(t, daemon.Options{Fleet: 4, MaxActive: 2, MaxQueue: 64})
	const clients = 8
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			errc <- func() error {
				spec := tinySpec(6, int64(100+i))
				info, err := c.Submit(spec)
				if err != nil {
					return err
				}
				switch i % 3 {
				case 0: // follower: full stream, byte-checked
					var got bytes.Buffer
					final, err := c.Follow(context.Background(), info.ID, &got)
					if err != nil {
						return err
					}
					if final.State != wire.StateDone {
						return fmt.Errorf("run %s ended %s", info.ID, final.State)
					}
				case 1: // canceller: cancel mid-flight, then verify it settled
					if _, err := c.Cancel(info.ID); err != nil {
						return err
					}
					if _, err := c.Attach(context.Background(), info.ID, 0, nil); err != nil {
						return err
					}
				case 2: // poller: status/list churn while runs execute
					for j := 0; j < 20; j++ {
						if _, err := c.Status(info.ID); err != nil {
							return err
						}
						if _, err := c.List(); err != nil {
							return err
						}
					}
					if _, err := c.Attach(context.Background(), info.ID, 0, nil); err != nil {
						return err
					}
				}
				return nil
			}()
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
	runs, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != clients {
		t.Fatalf("%d runs listed, want %d", len(runs), clients)
	}
	for _, info := range runs {
		final := waitState(t, c, info.ID)
		switch final.State {
		case wire.StateDone, wire.StateCancelled:
		default:
			t.Errorf("run %s settled %s (%s)", final.ID, final.State, final.Err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx, false); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonShutdownCancelsActive: a non-drain shutdown lands inside a
// deliberately stalled scenario and still returns well within its deadline —
// the run's context cut interrupts the stall — and the daemon stops serving.
func TestDaemonShutdownCancelsActive(t *testing.T) {
	stallNextRun(t, time.Minute)
	s, c := startDaemon(t, daemon.Options{Fleet: 1, MaxActive: 1})
	if _, err := c.Submit(tinySpec(1, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(tinySpec(1, 8)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx, false); err != nil {
		t.Fatal(err)
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatal("shutdown consumed the whole deadline against a minute-long stall")
	}
	if err := c.Ping(); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
}
