// Package daemon is the simulation-as-a-service server behind cmd/unisond:
// a long-lived process owning a bounded fleet of campaign engines, serving
// submit/attach/stream/cancel over a unix-domain socket with the
// length-prefixed JSON protocol of internal/daemon/wire.
//
// Everything the repository built so far — sharded word-parallel engines,
// frontier sparsity, churn, checkpoint/restore, the chaos-hardened campaign
// harness — runs in-process behind a CLI; the daemon turns that library into
// a system. The design follows the daemon/thin-client split of the OCI
// runtimes and kdo's deployless remote-run UX:
//
//   - Admission control: the fleet capacity (worker slots, default NumCPU —
//     the same quantity that sizes intra-run shard pools) bounds how many
//     runs execute concurrently; beyond MaxActive runs, submissions queue
//     FIFO up to MaxQueue and are then rejected loudly ("busy"), never
//     silently absorbed.
//   - Streaming with backpressure: attached clients replay the run's record
//     log from any sequence number and then follow the live tail. Record
//     events are retained and lossless (a slow or detached reader re-attaches
//     and loses nothing); per-run metrics snapshots ride a bounded
//     latest-wins side channel where a slow reader's stale frames are
//     replaced and counted (Event.Dropped) — the engines never block on a
//     reader in either case.
//   - Crash-safe run state: with a state directory, every submission persists
//     its manifest atomically (snapshot.AtomicWriteFile) and journals records
//     through campaign.OpenResumable — fsync per record, CRC sidecar, torn
//     tails truncated. A restarted daemon re-expands each manifest, salvages
//     the journal prefix, resumes incomplete runs to completion and reports
//     finished ones, and the combined journal is byte-identical to an
//     uninterrupted run (the kill-and-restart test pins this).
//   - Bounded shutdown: Shutdown stops admissions, cancels (or drains) active
//     runs, closes every connection, and waits for every goroutine within a
//     context deadline, so start/shutdown cycles leak nothing (goroutine pin
//     in the soak test, same contract as runtime.Shutdown).
package daemon

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"thinunison/internal/campaign"
	"thinunison/internal/daemon/wire"
	"thinunison/internal/obs"
)

// ErrBusy rejects submissions when the fleet is saturated and the admission
// queue is full.
var ErrBusy = errors.New("daemon: busy: fleet saturated and admission queue full")

// Options configures a Server.
type Options struct {
	// StateDir is the run-state directory (manifests + journals). Empty runs
	// the daemon ephemeral: no persistence, no resume after restart.
	StateDir string
	// Fleet is the engine-fleet capacity in worker slots; <= 0 means
	// runtime.NumCPU(). It bounds the total run-level fan-out and is the
	// same idle-capacity quantity that sizes intra-run shard pools.
	Fleet int
	// MaxActive bounds concurrently executing runs; <= 0 means Fleet.
	MaxActive int
	// MaxQueue bounds submissions queued beyond MaxActive; < 0 means 0
	// (reject immediately when saturated), 0 means 4*MaxActive.
	MaxQueue int
	// Retries re-executes transiently failing scenarios (see
	// campaign.RetryPolicy); 0 disables retries.
	Retries int
}

// Server is one daemon instance. Construct with New, start serving with
// Serve or ListenAndServe, stop with Shutdown (graceful) or Kill (hard).
type Server struct {
	opt Options

	mu      sync.Mutex
	ln      net.Listener
	runs    map[string]*run
	order   []string // submission order, for List
	nextID  int
	active  int
	queue   []*run
	closing bool
	conns   map[net.Conn]struct{}

	wg      sync.WaitGroup // accept loop + connection handlers + run loops
	metrics *obs.Metrics   // daemon-wide engine-counter aggregate

	shutdownReq  chan struct{}
	shutdownOnce sync.Once
	drainReq     bool
}

// New builds a server and, when a state directory is configured, loads every
// persisted run: finished runs are reported as-is, incomplete ones are queued
// for resume and picked up as soon as Serve starts admitting.
func New(opt Options) (*Server, error) {
	if opt.Fleet <= 0 {
		opt.Fleet = runtime.NumCPU()
	}
	if opt.MaxActive <= 0 {
		opt.MaxActive = opt.Fleet
	}
	switch {
	case opt.MaxQueue < 0:
		opt.MaxQueue = 0
	case opt.MaxQueue == 0:
		opt.MaxQueue = 4 * opt.MaxActive
	}
	s := &Server{
		opt:         opt,
		runs:        make(map[string]*run),
		conns:       make(map[net.Conn]struct{}),
		metrics:     &obs.Metrics{},
		shutdownReq: make(chan struct{}),
	}
	if opt.StateDir != "" {
		if err := os.MkdirAll(s.runDir(), 0o755); err != nil {
			return nil, fmt.Errorf("daemon: state dir: %w", err)
		}
		if err := s.loadState(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// runDir is the per-run state subdirectory.
func (s *Server) runDir() string { return filepath.Join(s.opt.StateDir, "runs") }

func (s *Server) manifestPath(id string) string {
	return filepath.Join(s.runDir(), id+".json")
}

func (s *Server) journalPath(id string) string {
	return filepath.Join(s.runDir(), id+".jsonl")
}

// loadState restores persisted runs after a restart. Every manifest is
// re-expanded to its scenario set and its journal salvaged through
// campaign.OpenResumable; runs with a complete record set are reported in
// their final state, the rest are queued for resume. A manifest that no
// longer expands (unknown preset after a downgrade, corrupt JSON) becomes a
// failed run rather than a silent skip: a restarted daemon must account for
// every run it ever admitted.
func (s *Server) loadState() error {
	entries, err := os.ReadDir(s.runDir())
	if err != nil {
		return fmt.Errorf("daemon: read state dir: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") || e.IsDir() {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, ".json"))
	}
	sort.Slice(ids, func(i, j int) bool {
		// Numeric order for daemon-assigned IDs (r1, r2, … r10), lexical for
		// the rest, so resume admission matches submission order.
		ni, iok := numericID(ids[i])
		nj, jok := numericID(ids[j])
		if iok && jok {
			return ni < nj
		}
		if iok != jok {
			return iok
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		if n, ok := numericID(id); ok && n >= s.nextID {
			s.nextID = n + 1
		}
		r, err := s.restoreRun(id)
		if err != nil {
			r = s.deadRun(id, err)
		}
		s.runs[id] = r
		s.order = append(s.order, id)
		if r.stateLocked() == wire.StateQueued {
			s.queue = append(s.queue, r)
		}
	}
	return nil
}

// numericID parses a daemon-assigned run ID ("r42" → 42).
func numericID(id string) (int, bool) {
	if !strings.HasPrefix(id, "r") {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Serve starts accepting connections on ln (which the server now owns) and
// begins admitting queued runs. It returns immediately; the accept loop runs
// in the background until Shutdown or Kill.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.admitLocked()
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
}

// ListenAndServe listens on a unix-domain socket at path and serves on it. A
// stale socket file from a dead daemon is removed first.
func (s *Server) ListenAndServe(path string) error {
	if _, err := os.Stat(path); err == nil {
		// Probe: a connectable socket means a live daemon; refuse to hijack.
		if c, err := net.DialTimeout("unix", path, time.Second); err == nil {
			c.Close()
			return fmt.Errorf("daemon: socket %s already served by a live daemon", path)
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("daemon: remove stale socket: %w", err)
		}
	}
	ln, err := net.Listen("unix", path)
	if err != nil {
		return fmt.Errorf("daemon: listen %s: %w", path, err)
	}
	s.Serve(ln)
	return nil
}

// Metrics exposes the daemon-wide engine-counter aggregate (every finished
// scenario's snapshot folded in), for obs.Publish / the -debug-addr endpoint.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// ShutdownRequested is closed when a client issues the shutdown op; the
// daemon main selects on it next to its signal channel. Drain reports whether
// that request asked for a drain.
func (s *Server) ShutdownRequested() <-chan struct{} { return s.shutdownReq }

// DrainRequested reports whether the shutdown op asked to finish active runs
// rather than cancel them.
func (s *Server) DrainRequested() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainReq
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed: shutdown
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// dropConn unregisters and closes a connection.
func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// handle serves one connection: one request, one response, and for attach a
// following event stream. Connections are cheap on a unix socket, and
// one-request-per-connection keeps every stream linear.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	req, err := wire.ReadRequest(conn)
	if err != nil {
		// Garbage, truncation or version skew: answer loudly if the pipe
		// still works, then hang up. Never panic, never stay silent.
		_ = wire.WriteFrame(conn, wire.Response{Err: err.Error()})
		return
	}
	switch req.Op {
	case wire.OpPing:
		_ = wire.WriteFrame(conn, wire.Response{OK: true})
	case wire.OpSubmit:
		s.handleSubmit(conn, req)
	case wire.OpAttach:
		s.handleAttach(conn, req)
	case wire.OpCancel:
		s.handleCancel(conn, req)
	case wire.OpStatus:
		s.handleStatus(conn, req)
	case wire.OpList:
		s.handleList(conn)
	case wire.OpMetrics:
		snap := s.metrics.Snapshot()
		_ = wire.WriteFrame(conn, wire.Response{OK: true, Metrics: &snap})
	case wire.OpShutdown:
		s.mu.Lock()
		s.drainReq = s.drainReq || req.Drain
		s.mu.Unlock()
		_ = wire.WriteFrame(conn, wire.Response{OK: true})
		s.shutdownOnce.Do(func() { close(s.shutdownReq) })
	default:
		_ = wire.WriteFrame(conn, wire.Response{Err: fmt.Sprintf("daemon: unknown op %q", req.Op)})
	}
}

func (s *Server) handleSubmit(conn net.Conn, req wire.Request) {
	if req.Submit == nil {
		_ = wire.WriteFrame(conn, wire.Response{Err: "daemon: submit without submission"})
		return
	}
	info, err := s.Submit(*req.Submit)
	if err != nil {
		_ = wire.WriteFrame(conn, wire.Response{Err: err.Error()})
		return
	}
	_ = wire.WriteFrame(conn, wire.Response{OK: true, Run: &info})
}

// Submit validates, persists and admits one run submission. It is exported
// for in-process embedding (tests, cmd/campaign -daemon-check).
func (s *Server) Submit(spec wire.SubmitSpec) (wire.RunInfo, error) {
	scenarios, err := spec.Scenarios()
	if err != nil {
		return wire.RunInfo{}, err
	}
	if len(scenarios) == 0 {
		return wire.RunInfo{}, errors.New("daemon: submission expands to zero scenarios")
	}
	if spec.ID != "" && !validRunID(spec.ID) {
		return wire.RunInfo{}, fmt.Errorf("daemon: bad run id %q (want [a-z0-9-]+)", spec.ID)
	}

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return wire.RunInfo{}, errors.New("daemon: shutting down")
	}
	// Admission control happens before any state is persisted: a rejected
	// submission leaves no manifest behind.
	if s.active >= s.opt.MaxActive && len(s.queue) >= s.opt.MaxQueue {
		s.mu.Unlock()
		return wire.RunInfo{}, ErrBusy
	}
	id := spec.ID
	if id == "" {
		id = "r" + strconv.Itoa(s.nextID)
		s.nextID++
	} else if _, dup := s.runs[id]; dup {
		s.mu.Unlock()
		return wire.RunInfo{}, fmt.Errorf("daemon: run %q already exists", id)
	}
	spec.ID = id
	s.mu.Unlock()

	r, err := s.newRun(id, spec, scenarios)
	if err != nil {
		return wire.RunInfo{}, err
	}

	s.mu.Lock()
	s.runs[id] = r
	s.order = append(s.order, id)
	s.queue = append(s.queue, r)
	s.admitLocked()
	info := r.info()
	s.mu.Unlock()
	return info, nil
}

// validRunID accepts client-chosen run IDs: lowercase alphanumerics and
// dashes, so IDs are always safe as file names in the state dir.
func validRunID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

// admitLocked starts queued runs while fleet slots are free. Caller holds
// s.mu. Runs admitted before Serve (restored state) stay queued until the
// listener is up, so a crashed-and-restarted daemon begins resuming exactly
// when it begins serving.
func (s *Server) admitLocked() {
	if s.ln == nil || s.closing {
		return
	}
	for len(s.queue) > 0 && s.active < s.opt.MaxActive {
		r := s.queue[0]
		s.queue = s.queue[1:]
		if s.startRun(r) {
			s.active++
		}
	}
}

// runWorkers sizes one run's run-level fan-out: its requested worker count
// clamped to the fleet, defaulting to the fleet capacity split across the
// maximum concurrent runs — the same idle-share rule campaign.Runner uses to
// size intra-run shard pools. Worker count never changes record bytes.
func (s *Server) runWorkers(requested int) int {
	w := requested
	if w <= 0 {
		w = s.opt.Fleet / s.opt.MaxActive
	}
	if w < 1 {
		w = 1
	}
	if w > s.opt.Fleet {
		w = s.opt.Fleet
	}
	return w
}

// startRun launches one run's executor goroutine; it reports false for a run
// cancelled while queued (whose terminal state is already settled). Caller
// holds s.mu.
func (s *Server) startRun(r *run) bool {
	ctx, cancel := context.WithCancelCause(context.Background())
	r.mu.Lock()
	if r.state != wire.StateQueued {
		r.mu.Unlock()
		cancel(nil)
		return false
	}
	r.state = wire.StateRunning
	r.cancel = cancel
	r.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		runner := &campaign.Runner{
			Workers: s.runWorkers(r.spec.Workers),
			// Timing stays off: daemon records must be byte-identical to an
			// in-process campaign run (the -daemon-check invariant), and
			// wall time is the one nondeterministic field.
			Timing: false,
			// Engine blocks are folded into the run and daemon aggregates in
			// appendRecord, then stripped before journaling/streaming —
			// exactly the Runner's own EngineMetrics=false byte contract.
			EngineMetrics: true,
			Retry: campaign.RetryPolicy{
				Max:        s.opt.Retries,
				Backoff:    10 * time.Millisecond,
				MaxBackoff: time.Second,
			},
			OnRecord: func(rec campaign.Record) { s.appendRecord(r, rec) },
		}
		_, runErr := runner.Run(ctx, r.remaining)
		s.finishRun(r, runErr)
	}()
	return true
}

// appendRecord is the single place a run's outcome becomes durable and
// visible: called on the Runner's results goroutine, in scenario-index
// order. The engine-counter block is folded into the run's and the daemon's
// aggregates and stripped; the record is journaled (fsynced, checksummed)
// and appended to the in-memory event log; every subscriber is offered the
// fresh metrics snapshot (lossy) and woken (lossless log tail).
func (s *Server) appendRecord(r *run, rec campaign.Record) {
	if rec.Engine != nil {
		r.metrics.Add(*rec.Engine)
		s.metrics.Add(*rec.Engine)
		rec.Engine = nil
	}
	// Cancelled records carry no durable outcome: the journal skips them and
	// the scenario re-runs on resume, so streaming them would hand clients
	// records the daemon does not stand behind.
	if rec.Cancelled() {
		return
	}
	r.append(rec)
}

// finishRun resolves the run's terminal state, releases its fleet slot and
// admits the next queued run.
func (s *Server) finishRun(r *run, runErr error) {
	r.finalize(runErr)
	s.mu.Lock()
	s.active--
	s.admitLocked()
	s.mu.Unlock()
}

func (s *Server) handleCancel(conn net.Conn, req wire.Request) {
	r, err := s.lookup(req.Run)
	if err != nil {
		_ = wire.WriteFrame(conn, wire.Response{Err: err.Error()})
		return
	}
	r.requestCancel()
	info := r.info()
	_ = wire.WriteFrame(conn, wire.Response{OK: true, Run: &info})
}

func (s *Server) handleStatus(conn net.Conn, req wire.Request) {
	r, err := s.lookup(req.Run)
	if err != nil {
		_ = wire.WriteFrame(conn, wire.Response{Err: err.Error()})
		return
	}
	info := r.info()
	_ = wire.WriteFrame(conn, wire.Response{OK: true, Run: &info})
}

func (s *Server) handleList(conn net.Conn) {
	s.mu.Lock()
	infos := make([]wire.RunInfo, 0, len(s.order))
	for _, id := range s.order {
		infos = append(infos, s.runs[id].info())
	}
	s.mu.Unlock()
	_ = wire.WriteFrame(conn, wire.Response{OK: true, Runs: infos})
}

func (s *Server) lookup(id string) (*run, error) {
	if id == "" {
		return nil, errors.New("daemon: request without run id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return nil, fmt.Errorf("daemon: unknown run %q", id)
	}
	return r, nil
}

// handleAttach streams a run to one client: a Response with the run's info,
// then the durable record log from the requested cursor, interleaved with
// lossy metrics snapshots, ending with an eof event once the run is terminal
// and the log is drained. The client detaches by closing its connection; a
// reader that blocks forever blocks only this goroutine, never the engines.
func (s *Server) handleAttach(conn net.Conn, req wire.Request) {
	r, err := s.lookup(req.Run)
	if err != nil {
		_ = wire.WriteFrame(conn, wire.Response{Err: err.Error()})
		return
	}
	info := r.info()
	if err := wire.WriteFrame(conn, wire.Response{OK: true, Run: &info}); err != nil {
		return
	}

	sub := r.subscribe()
	defer r.unsubscribe(sub)

	// Detach detection: the client writes nothing after the request, so any
	// read completion (EOF, reset) means it hung up.
	gone := make(chan struct{})
	go func() {
		defer close(gone)
		var buf [1]byte
		for {
			if _, err := conn.Read(buf[:]); err != nil {
				return
			}
		}
	}()

	cursor := req.From
	for {
		if ev, ok := r.eventAt(cursor); ok {
			ev.Dropped = sub.dropped.Load()
			if err := wire.WriteFrame(conn, ev); err != nil {
				return
			}
			cursor++
			continue
		}
		if snap, ok := sub.take(); ok {
			ev := wire.Event{Type: wire.EventMetrics, Metrics: snap, Dropped: sub.dropped.Load()}
			if err := wire.WriteFrame(conn, ev); err != nil {
				return
			}
			continue
		}
		if r.terminal() {
			// Re-check the log: a record may have landed between eventAt and
			// the terminal transition.
			if _, ok := r.eventAt(cursor); ok {
				continue
			}
			info := r.info()
			_ = wire.WriteFrame(conn, wire.Event{
				Type: wire.EventEOF, Run: &info, Dropped: sub.dropped.Load(),
			})
			return
		}
		select {
		case <-sub.notify:
		case <-r.finished:
		case <-gone:
			return
		}
	}
}

// Shutdown stops the daemon: no new connections or submissions, queued runs
// cancelled, active runs cancelled (or, with drain, awaited) — then every
// connection is closed and every goroutine joined, bounded by ctx. Like
// runtime.Shutdown, a deadline miss leaves the remaining goroutines draining
// in the background and returns the context's cause.
func (s *Server) Shutdown(ctx context.Context, drain bool) error {
	s.mu.Lock()
	s.closing = true
	ln := s.ln
	s.ln = nil
	// Queued runs never started; cancel them in place.
	for _, r := range s.queue {
		r.requestCancel()
	}
	s.queue = nil
	var actives []*run
	for _, r := range s.runs {
		if st := r.stateLocked(); st == wire.StateRunning {
			actives = append(actives, r)
		}
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	if drain {
		// Wait for active runs within the deadline, then cancel stragglers.
		for _, r := range actives {
			select {
			case <-r.finished:
			case <-ctx.Done():
				drain = false
			}
			if !drain {
				break
			}
		}
	}
	if !drain {
		for _, r := range actives {
			r.requestCancel()
		}
	}

	// Attached streams end on their own once runs are terminal; cut the
	// stragglers (blocked writes to slow readers) by closing their sockets.
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	closeConns := func() {
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	}
	closeConns()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("daemon: shutdown: %w", context.Cause(ctx))
	}
}

// Kill hard-stops the daemon: listener closed, every run cancelled
// immediately, every connection cut, all goroutines joined. It is the
// in-process stand-in for SIGKILL in crash tests — no drain, no final
// flushes beyond what each fsynced journal append already made durable.
func (s *Server) Kill() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx, false)
}
