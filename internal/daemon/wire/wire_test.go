package wire_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"thinunison/internal/campaign"
	"thinunison/internal/daemon/wire"
	"thinunison/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden wire fixtures in testdata")

// goldenCases is one instance of every frame type the protocol ever puts on
// the wire, with every field class exercised at least once. The encoded
// frames are pinned byte-for-byte in testdata: an encoding change (field
// rename, reordering, framing tweak) fails this test and forces a deliberate
// fixture update plus a wire.Version bump decision.
func goldenCases() []struct {
	name string
	v    any
} {
	snap := obs.Snapshot{Steps: 64, Rounds: 8}
	return []struct {
		name string
		v    any
	}{
		{"request_ping", wire.Request{V: wire.Version, Op: wire.OpPing}},
		{"request_submit_preset", wire.Request{V: wire.Version, Op: wire.OpSubmit, Submit: &wire.SubmitSpec{
			ID: "night-soak", Preset: "smoke", Seed: 42, Workers: 2,
		}}},
		{"request_submit_scenario", wire.Request{V: wire.Version, Op: wire.OpSubmit, Submit: &wire.SubmitSpec{
			Seed: 7,
			Scenario: &wire.ScenarioSpec{
				Family:    "cycle",
				N:         64,
				D:         8,
				Scheduler: campaign.RandomSubset,
				Algorithm: "au",
				Faults:    campaign.FaultSpec{Count: 3, Bursts: 2},
				Churn:     campaign.ChurnSpec{Period: 16, Flips: 2, Events: 4},
				Trials:    3,
			},
			Parallelism: 4, Frontier: 1, WordParallel: true,
		}}},
		{"request_attach", wire.Request{V: wire.Version, Op: wire.OpAttach, Run: "r3", From: 17}},
		{"request_cancel", wire.Request{V: wire.Version, Op: wire.OpCancel, Run: "r3"}},
		{"request_status", wire.Request{V: wire.Version, Op: wire.OpStatus, Run: "r3"}},
		{"request_list", wire.Request{V: wire.Version, Op: wire.OpList}},
		{"request_metrics", wire.Request{V: wire.Version, Op: wire.OpMetrics}},
		{"request_shutdown", wire.Request{V: wire.Version, Op: wire.OpShutdown, Drain: true}},
		{"response_ok", wire.Response{OK: true}},
		{"response_error", wire.Response{Err: "daemon: busy: fleet saturated and admission queue full"}},
		{"response_run", wire.Response{OK: true, Run: &wire.RunInfo{
			ID: "r3", State: wire.StateRunning, Preset: "smoke", Seed: 42,
			Scenarios: 9, Done: 4, Failures: 1, Recovered: 2,
		}}},
		{"response_runs", wire.Response{OK: true, Runs: []wire.RunInfo{
			{ID: "r0", State: wire.StateDone, Seed: 1, Scenarios: 2, Done: 2},
			{ID: "r1", State: wire.StateFailed, Seed: 1, Scenarios: 2, Done: 1, Err: "daemon: 1 of 2 scenario(s) failed"},
		}}},
		{"response_metrics", wire.Response{OK: true, Metrics: &snap}},
		{"event_record", wire.Event{Seq: 5, Type: wire.EventRecord, Dropped: 2,
			Record: json.RawMessage(`{"family":"cycle","n":64,"ok":true}`)}},
		{"event_metrics", wire.Event{Type: wire.EventMetrics, Metrics: &snap}},
		{"event_eof", wire.Event{Type: wire.EventEOF, Run: &wire.RunInfo{
			ID: "r3", State: wire.StateCancelled, Seed: 42, Scenarios: 9, Done: 4,
		}}},
	}
}

// TestGoldenFrames pins the wire encoding of every frame type: the framed
// bytes must match the committed fixtures exactly, and decoding a fixture
// must reproduce the original value.
func TestGoldenFrames(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := wire.WriteFrame(&buf, tc.v); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name+".frame")
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update to regenerate): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("encoded frame differs from pinned fixture %s:\n got %q\nwant %q",
					path, buf.Bytes(), want)
			}

			// Decode the fixture through the typed reader for its frame class
			// and compare against the original value.
			r := bytes.NewReader(want)
			var got any
			switch v := tc.v.(type) {
			case wire.Request:
				got, err = wire.ReadRequest(r)
			case wire.Response:
				got, err = wire.ReadResponse(r)
			case wire.Event:
				got, err = wire.ReadEvent(r)
			default:
				t.Fatalf("unhandled frame type %T", v)
			}
			if err != nil {
				t.Fatalf("decode fixture: %v", err)
			}
			if !reflect.DeepEqual(got, tc.v) {
				t.Errorf("fixture did not round-trip:\n got %#v\nwant %#v", got, tc.v)
			}
		})
	}
}

// frame builds raw framed bytes around an arbitrary payload.
func frame(payload []byte) []byte {
	buf := make([]byte, 4, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// TestReadFrameErrors drives the decoder through every malformed-input
// class: each must fail loudly with a descriptive error, never panic, and a
// clean EOF must pass through untouched (that is how attach streams end).
func TestReadFrameErrors(t *testing.T) {
	cases := []struct {
		name  string
		data  []byte
		errIs error  // optional sentinel
		want  string // optional substring
	}{
		{name: "clean_eof", data: nil, errIs: io.EOF},
		{name: "truncated_header", data: []byte{0, 0, 1}, want: "truncated frame header"},
		{name: "empty_frame", data: frame(nil), want: "empty frame"},
		{name: "oversized_prefix", data: []byte{0xFF, 0xFF, 0xFF, 0xFF}, errIs: wire.ErrTooLarge},
		{name: "truncated_payload", data: frame([]byte(`{"op":"ping"`))[:10], want: "truncated frame payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := wire.ReadFrame(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("decoder accepted malformed input")
			}
			if tc.errIs != nil && !errors.Is(err, tc.errIs) {
				t.Errorf("error %v, want %v", err, tc.errIs)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestTypedReaderValidation pins the semantic checks above raw framing:
// garbage JSON, version skew, missing op, missing event type.
func TestTypedReaderValidation(t *testing.T) {
	if _, err := wire.ReadRequest(bytes.NewReader(frame([]byte("not json")))); err == nil ||
		!strings.Contains(err.Error(), "bad request frame") {
		t.Errorf("garbage request: %v", err)
	}
	if _, err := wire.ReadRequest(bytes.NewReader(frame([]byte(`{"v":99,"op":"ping"}`)))); err == nil ||
		!strings.Contains(err.Error(), "protocol version 99") {
		t.Errorf("version skew: %v", err)
	}
	if _, err := wire.ReadRequest(bytes.NewReader(frame([]byte(`{"v":1}`)))); err == nil ||
		!strings.Contains(err.Error(), "without op") {
		t.Errorf("missing op: %v", err)
	}
	if _, err := wire.ReadEvent(bytes.NewReader(frame([]byte(`{"seq":1}`)))); err == nil ||
		!strings.Contains(err.Error(), "without type") {
		t.Errorf("missing event type: %v", err)
	}
	if _, err := wire.ReadResponse(bytes.NewReader(frame([]byte(`[1,2]`)))); err == nil ||
		!strings.Contains(err.Error(), "bad response frame") {
		t.Errorf("mistyped response: %v", err)
	}
}

// TestWriteFrameTooLarge: oversized payloads are rejected on the way out,
// before any header byte hits the wire.
func TestWriteFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	big := wire.Event{Type: wire.EventRecord, Record: json.RawMessage(`"` + strings.Repeat("x", wire.MaxFrame) + `"`)}
	if err := wire.WriteFrame(&buf, big); !errors.Is(err, wire.ErrTooLarge) {
		t.Fatalf("oversized write: %v, want ErrTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized write emitted %d bytes", buf.Len())
	}
}

// TestFrameStreaming: consecutive frames on one stream decode in order with
// no bleed-over — the framing invariant attach streams depend on.
func TestFrameStreaming(t *testing.T) {
	var buf bytes.Buffer
	events := []wire.Event{
		{Seq: 1, Type: wire.EventRecord, Record: json.RawMessage(`{"i":1}`)},
		{Type: wire.EventMetrics, Metrics: &obs.Snapshot{Steps: 3}},
		{Type: wire.EventEOF},
	}
	for _, ev := range events {
		if err := wire.WriteFrame(&buf, ev); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range events {
		got, err := wire.ReadEvent(&buf)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("event %d: got %#v want %#v", i, got, want)
		}
	}
	if _, err := wire.ReadEvent(&buf); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// FuzzReadFrame: arbitrary bytes must never panic the framing layer, and
// whatever parses must re-frame to bytes that parse back identically.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	if err := wire.WriteFrame(&seed, wire.Request{V: wire.Version, Op: wire.OpPing}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add(frame(nil))
	f.Add(frame([]byte(`{"v":1,"op":"ping"}`))[:7])
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := wire.ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) == 0 || len(payload) > wire.MaxFrame {
			t.Fatalf("accepted out-of-bounds payload length %d", len(payload))
		}
		again, err := wire.ReadFrame(bytes.NewReader(frame(payload)))
		if err != nil {
			t.Fatalf("re-framed payload failed to parse: %v", err)
		}
		if !bytes.Equal(again, payload) {
			t.Fatal("re-framed payload changed")
		}
	})
}

// FuzzReadRequest: the typed decoder on arbitrary bytes must never panic,
// and every accepted request must carry the exact protocol version and an
// op, and survive an encode/decode round-trip.
func FuzzReadRequest(f *testing.F) {
	for _, tc := range goldenCases() {
		if _, ok := tc.v.(wire.Request); !ok {
			continue
		}
		var buf bytes.Buffer
		if err := wire.WriteFrame(&buf, tc.v); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add(frame([]byte(`{"v":1,"op":"submit","submit":{"preset":"smoke"}}`)))
	f.Add(frame([]byte(`{"v":2,"op":"ping"}`)))
	f.Add(frame([]byte(`null`)))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := wire.ReadRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if req.V != wire.Version || req.Op == "" {
			t.Fatalf("accepted invalid request %#v", req)
		}
		var buf bytes.Buffer
		if err := wire.WriteFrame(&buf, req); err != nil {
			t.Fatalf("re-encode accepted request: %v", err)
		}
		again, err := wire.ReadRequest(&buf)
		if err != nil {
			t.Fatalf("re-decode re-encoded request: %v", err)
		}
		if again.V != req.V || again.Op != req.Op || again.Run != req.Run || again.From != req.From {
			t.Fatalf("round-trip changed request: %#v != %#v", again, req)
		}
	})
}
