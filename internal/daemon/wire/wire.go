// Package wire is the unisond client/server protocol: length-prefixed JSON
// frames over a stream transport (a unix-domain socket in production, any
// net.Conn or in-memory pipe in tests).
//
// A frame is a 4-byte big-endian payload length followed by exactly that many
// bytes of JSON. The framing layer is deliberately dumb — no compression, no
// multiplexing — because the protocol is one-request-per-connection: a client
// dials, writes one Request, reads one Response, and either hangs up (control
// ops) or keeps reading Event frames until the server ends the stream
// (attach). That keeps every connection a linear byte stream with no
// interleaving to reason about, the same split kdo and the OCI runtimes use
// between a long-lived daemon and short-lived control clients.
//
// Decoding is strict and loud: a truncated header or payload, an oversized
// or empty length prefix, and non-JSON garbage all fail with descriptive
// errors, never a panic — fuzzed in this package, mirroring the
// internal/snapshot container contract. Encoding is deterministic (fixed
// struct field order, no maps), so every frame type has pinned golden bytes
// in testdata.
//
// Record events carry the exact JSONL line the daemon journaled, as a
// json.RawMessage: the client re-emits Record + "\n" verbatim, which is what
// makes daemon-streamed output byte-identical to an in-process campaign run
// (the invariant cmd/campaign -daemon-check enforces in CI).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"thinunison/internal/campaign"
	"thinunison/internal/graph"
	"thinunison/internal/obs"
)

// Version is the protocol version. Every Request carries it; the server
// rejects mismatches so a stale client fails loudly instead of misparsing.
const Version = 1

// MaxFrame bounds a frame payload (16 MiB). A length prefix beyond it is
// rejected before any allocation, so a garbage or hostile header cannot ask
// the peer to allocate gigabytes.
const MaxFrame = 1 << 24

// Request operations.
const (
	OpPing     = "ping"
	OpSubmit   = "submit"
	OpAttach   = "attach"
	OpCancel   = "cancel"
	OpStatus   = "status"
	OpList     = "list"
	OpMetrics  = "metrics"
	OpShutdown = "shutdown"
)

// Run states reported in RunInfo.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Event types of an attach stream.
const (
	// EventRecord carries one durable campaign record (a JSONL line). Record
	// events are sequenced and retained by the daemon, so a slow or detached
	// reader re-attaches with From and loses nothing.
	EventRecord = "record"
	// EventMetrics carries a per-run engine-counter snapshot. Metrics events
	// are a lossy latest-wins side channel: a reader that cannot keep up has
	// stale snapshots replaced, counted in Dropped, and the engines never
	// block on it.
	EventMetrics = "metrics"
	// EventEOF ends the stream with the run's final state.
	EventEOF = "eof"
)

// Request is the single client→server frame type.
type Request struct {
	// V is the protocol version (Version).
	V int `json:"v"`
	// Op selects the operation.
	Op string `json:"op"`
	// Run targets an existing run (attach, cancel, status).
	Run string `json:"run,omitempty"`
	// From is the attach replay cursor: the stream resumes after durable
	// event sequence From (0 = from the beginning).
	From uint64 `json:"from,omitempty"`
	// Submit carries the run submission for OpSubmit.
	Submit *SubmitSpec `json:"submit,omitempty"`
	// Drain asks OpShutdown to finish active runs before exiting instead of
	// cancelling them.
	Drain bool `json:"drain,omitempty"`
}

// SubmitSpec describes one run submission: a campaign preset or a single
// custom scenario, plus the deterministic campaign seed and the execution-
// mode overrides the campaign CLI exposes. Everything the daemon needs to
// re-expand the same scenario set after a restart lives here, so the spec is
// persisted verbatim in the run manifest.
type SubmitSpec struct {
	// ID optionally names the run; empty lets the daemon assign r1, r2, ….
	ID string `json:"id,omitempty"`
	// Preset is a campaign preset name; exclusive with Scenario.
	Preset string `json:"preset,omitempty"`
	// Scenario is a single custom scenario (the unisonsim -remote shape).
	Scenario *ScenarioSpec `json:"scenario,omitempty"`
	// Seed is the campaign seed; per-scenario seeds derive from it, so equal
	// specs replay byte-identically.
	Seed int64 `json:"seed"`
	// Workers requests a run-level worker count; 0 lets the daemon size the
	// run by its fleet share, and any value is clamped to the fleet capacity.
	// Records are worker-count independent either way.
	Workers int `json:"workers,omitempty"`
	// Parallelism, Frontier and WordParallel override the engines' execution
	// mode for every scenario of the run (see campaign.Scenario); all three
	// are byte-transparent to records.
	Parallelism  int  `json:"parallelism,omitempty"`
	Frontier     int  `json:"frontier,omitempty"`
	WordParallel bool `json:"word_parallel,omitempty"`
}

// ScenarioSpec is the wire form of one custom scenario.
type ScenarioSpec struct {
	Family    string                 `json:"family"`
	N         int                    `json:"n"`
	D         int                    `json:"d,omitempty"`
	Scheduler campaign.SchedulerSpec `json:"scheduler"`
	Algorithm string                 `json:"algorithm"`
	Faults    campaign.FaultSpec     `json:"faults"`
	Churn     campaign.ChurnSpec     `json:"churn"`
	// Trials repeats the scenario point (default 1).
	Trials int `json:"trials,omitempty"`
}

// RunInfo is the server's view of one run.
type RunInfo struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Preset echoes the submission ("" for custom scenarios).
	Preset string `json:"preset,omitempty"`
	Seed   int64  `json:"seed"`
	// Scenarios is the run's total scenario count; Done the number with a
	// durable record (also the sequence number of the latest record event);
	// Failures the records with ok=false.
	Scenarios int `json:"scenarios"`
	Done      int `json:"done"`
	Failures  int `json:"failures,omitempty"`
	// Recovered is the number of records salvaged from the run's journal
	// when a restarted daemon picked the run back up.
	Recovered int `json:"recovered,omitempty"`
	// Err carries the run-level failure (journal write error, harness
	// failure), distinct from per-record failures.
	Err string `json:"error,omitempty"`
}

// Response is the single server→client reply frame type.
type Response struct {
	OK  bool   `json:"ok"`
	Err string `json:"error,omitempty"`
	// Run answers submit/attach/cancel/status; Runs answers list.
	Run  *RunInfo  `json:"run,omitempty"`
	Runs []RunInfo `json:"runs,omitempty"`
	// Metrics answers OpMetrics with the daemon-wide engine-counter
	// aggregate.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// Event is one attach-stream frame.
type Event struct {
	// Seq is the event's 1-based position in the run's durable event log
	// (record events only; 0 marks the lossy metrics side channel).
	Seq uint64 `json:"seq,omitempty"`
	// Type is EventRecord, EventMetrics or EventEOF.
	Type string `json:"type"`
	// Record is the exact JSONL record line, without its trailing newline.
	Record json.RawMessage `json:"record,omitempty"`
	// Run carries the run state on EventEOF.
	Run *RunInfo `json:"run,omitempty"`
	// Metrics carries the per-run engine-counter snapshot on EventMetrics.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Dropped is the cumulative count of lossy frames this subscriber lost
	// to backpressure (its buffer was full while the run progressed). It is
	// stamped on every delivered event, so even a reader that only ever sees
	// record frames learns it fell behind the metrics channel.
	Dropped uint64 `json:"dropped,omitempty"`
}

// ErrTooLarge rejects frames beyond MaxFrame, in either direction.
var ErrTooLarge = errors.New("wire: frame exceeds size limit")

// WriteFrame marshals v and writes it as one length-prefixed frame. The
// header and payload go out in a single Write, so a frame is never torn by
// goroutine interleaving as long as callers serialize on w.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal frame: %w", err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	buf := make([]byte, 4, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed payload. A clean end of stream before
// any header byte returns io.EOF untouched (that is how attach streams end);
// everything else — truncated header, empty or oversized length prefix,
// truncated payload — fails with a descriptive error.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: truncated frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, errors.New("wire: empty frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: header claims %d bytes", ErrTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: truncated frame payload: %w", err)
	}
	return payload, nil
}

// decode unmarshals a frame payload into T, naming the frame type on error.
func decode[T any](payload []byte, kind string) (T, error) {
	var v T
	if err := json.Unmarshal(payload, &v); err != nil {
		return v, fmt.Errorf("wire: bad %s frame: %w", kind, err)
	}
	return v, nil
}

// ReadRequest reads and validates one Request frame, rejecting protocol
// version mismatches.
func ReadRequest(r io.Reader) (Request, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return Request{}, err
	}
	req, err := decode[Request](payload, "request")
	if err != nil {
		return req, err
	}
	if req.V != Version {
		return req, fmt.Errorf("wire: protocol version %d, want %d", req.V, Version)
	}
	if req.Op == "" {
		return req, errors.New("wire: request without op")
	}
	return req, nil
}

// ReadResponse reads one Response frame.
func ReadResponse(r io.Reader) (Response, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return Response{}, err
	}
	return decode[Response](payload, "response")
}

// ReadEvent reads one Event frame.
func ReadEvent(r io.Reader) (Event, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return Event{}, err
	}
	ev, err := decode[Event](payload, "event")
	if err != nil {
		return ev, err
	}
	if ev.Type == "" {
		return ev, errors.New("wire: event without type")
	}
	return ev, nil
}

// Scenarios expands the spec into its concrete scenario list with the
// execution-mode overrides applied — the exact set a local
// `campaign -preset ... -seed ...` run would execute, which is what keeps
// daemon output byte-identical to in-process output. It is deterministic, so
// a restarted daemon re-expands the persisted spec to the same scenarios.
func (sp SubmitSpec) Scenarios() ([]campaign.Scenario, error) {
	var scs []campaign.Scenario
	switch {
	case sp.Preset != "" && sp.Scenario != nil:
		return nil, errors.New("wire: submission carries both a preset and a custom scenario")
	case sp.Preset != "":
		var err error
		scs, err = campaign.Preset(sp.Preset, sp.Seed)
		if err != nil {
			return nil, err
		}
	case sp.Scenario != nil:
		var err error
		scs, err = sp.Scenario.expand(sp.Seed)
		if err != nil {
			return nil, err
		}
	default:
		return nil, errors.New("wire: empty submission (need a preset or a scenario)")
	}
	// Overrides apply only when set, so a plain preset submission executes
	// with the preset's own modes (all three are byte-transparent to records
	// either way).
	for i := range scs {
		if sp.Parallelism != 0 {
			scs[i].Parallelism = sp.Parallelism
		}
		if sp.Frontier != 0 {
			scs[i].Frontier = sp.Frontier
		}
		if sp.WordParallel {
			scs[i].WordParallel = true
		}
	}
	return scs, nil
}

// expand turns the wire scenario into trial-many campaign scenarios with
// seeds derived from the campaign seed.
func (ss ScenarioSpec) expand(seed int64) ([]campaign.Scenario, error) {
	fam, err := graph.ParseFamily(ss.Family)
	if err != nil {
		return nil, err
	}
	alg, err := campaign.ParseAlgorithm(ss.Algorithm)
	if err != nil {
		return nil, err
	}
	trials := ss.Trials
	if trials <= 0 {
		trials = 1
	}
	scs := make([]campaign.Scenario, trials)
	for t := range scs {
		scs[t] = campaign.Scenario{
			Family:    fam,
			N:         ss.N,
			D:         ss.D,
			Scheduler: ss.Scheduler,
			Algorithm: alg,
			Faults:    ss.Faults,
			Churn:     ss.Churn,
			Trial:     t,
		}
	}
	return campaign.Finalize(seed, scs), nil
}
