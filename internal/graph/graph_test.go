package graph_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"thinunison/internal/graph"
)

func TestBuilderValidation(t *testing.T) {
	if _, err := graph.NewBuilder(0); !errors.Is(err, graph.ErrEmptyGraph) {
		t.Errorf("NewBuilder(0) = %v, want ErrEmptyGraph", err)
	}
	b, err := graph.NewBuilder(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 1); !errors.Is(err, graph.ErrSelfLoop) {
		t.Errorf("self loop = %v, want ErrSelfLoop", err)
	}
	var oor *graph.OutOfRangeError
	if err := b.AddEdge(0, 3); !errors.As(err, &oor) {
		t.Errorf("out of range = %v, want OutOfRangeError", err)
	}
	if err := b.AddEdge(-1, 0); !errors.As(err, &oor) {
		t.Errorf("negative node = %v, want OutOfRangeError", err)
	}
}

func TestEdgeDeduplication(t *testing.T) {
	g, err := graph.New(3, [][2]int{{0, 1}, {1, 0}, {0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Errorf("M() = %d, want 2 (edges deduplicated)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge must be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if g.Degree(1) != 2 || g.Degree(2) != 1 {
		t.Errorf("degrees: %d %d", g.Degree(1), g.Degree(2))
	}
}

func TestValidateConnectivity(t *testing.T) {
	g, err := graph.New(4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); !errors.Is(err, graph.ErrDisconnected) {
		t.Errorf("Validate() = %v, want ErrDisconnected", err)
	}
	if g.Diameter() != -1 {
		t.Errorf("disconnected diameter = %d, want -1", g.Diameter())
	}
	if g.Distance(0, 3) != -1 {
		t.Error("cross-component distance should be -1")
	}
}

func TestFamilyDiameters(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*graph.Graph, error)
		wantN int
		wantD int
	}{
		{"path5", func() (*graph.Graph, error) { return graph.Path(5) }, 5, 4},
		{"cycle6", func() (*graph.Graph, error) { return graph.Cycle(6) }, 6, 3},
		{"cycle7", func() (*graph.Graph, error) { return graph.Cycle(7) }, 7, 3},
		{"star5", func() (*graph.Graph, error) { return graph.Star(5) }, 5, 2},
		{"k4", func() (*graph.Graph, error) { return graph.Complete(4) }, 4, 1},
		{"grid3x4", func() (*graph.Graph, error) { return graph.Grid(3, 4) }, 12, 5},
		{"tree7", func() (*graph.Graph, error) { return graph.CompleteBinaryTree(7) }, 7, 4},
		{"hyper3", func() (*graph.Graph, error) { return graph.Hypercube(3) }, 8, 3},
		{"single", func() (*graph.Graph, error) { return graph.Path(1) }, 1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != c.wantN {
				t.Errorf("N = %d, want %d", g.N(), c.wantN)
			}
			if got := g.Diameter(); got != c.wantD {
				t.Errorf("Diameter = %d, want %d", got, c.wantD)
			}
			if err := g.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
	if _, err := graph.Cycle(2); err == nil {
		t.Error("Cycle(2) should fail")
	}
	if _, err := graph.Hypercube(25); err == nil {
		t.Error("Hypercube(25) should fail")
	}
}

func TestRandomFamiliesConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		g, err := graph.RandomConnected(2+rng.Intn(30), rng.Float64()*0.3, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Fatal("RandomConnected produced a disconnected graph")
		}
		tr, err := graph.RandomTree(2+rng.Intn(30), rng)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Connected() || tr.M() != tr.N()-1 {
			t.Fatalf("RandomTree not a tree: n=%d m=%d", tr.N(), tr.M())
		}
	}
}

func TestBoundedDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range []struct{ n, d int }{{8, 2}, {12, 3}, {20, 4}, {30, 5}, {10, 1}} {
		g, err := graph.BoundedDiameter(c.n, c.d, rng)
		if err != nil {
			t.Fatalf("BoundedDiameter(%d,%d): %v", c.n, c.d, err)
		}
		if got := g.Diameter(); got != c.d {
			t.Errorf("BoundedDiameter(%d,%d) has diameter %d", c.n, c.d, got)
		}
	}
	if _, err := graph.BoundedDiameter(5, 5, rng); err == nil {
		t.Error("d >= n should fail")
	}
	if _, err := graph.BoundedDiameter(5, 0, rng); err == nil {
		t.Error("d = 0 with n > 1 should fail")
	}
}

func TestShortestPathAndBall(t *testing.T) {
	g, err := graph.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := g.ShortestPath(0, 8)
	if len(p) != g.Distance(0, 8)+1 {
		t.Fatalf("path length %d, want %d", len(p)-1, g.Distance(0, 8))
	}
	if p[0] != 0 || p[len(p)-1] != 8 {
		t.Errorf("path endpoints %d..%d", p[0], p[len(p)-1])
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Errorf("path step %d-%d is not an edge", p[i], p[i+1])
		}
	}
	ball := g.Ball(4, 1) // center of the grid
	if len(ball) != 5 {
		t.Errorf("Ball(center,1) = %v, want 5 nodes", ball)
	}
	if got := g.Ball(0, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("Ball(0,0) = %v", got)
	}
}

func TestIndependentSetPredicates(t *testing.T) {
	g, err := graph.Path(5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		set   []int
		indep bool
	}{
		{[]int{0, 2, 4}, true},
		{[]int{0, 3}, true},
		{[]int{1, 4}, true},
		{[]int{0, 1}, false}, // adjacent
		{[]int{}, true},
	}
	for i, c := range cases {
		indep := g.IsIndependentSet(c.set)
		if indep != c.indep {
			t.Errorf("case %d: IsIndependentSet(%v) = %v, want %v", i, c.set, indep, c.indep)
		}
	}
	if !g.IsMaximalIndependentSet([]int{0, 2, 4}) {
		t.Error("{0,2,4} is an MIS of P5")
	}
	if g.IsMaximalIndependentSet([]int{0}) {
		t.Error("{0} is not maximal in P5")
	}
	if g.IsMaximalIndependentSet([]int{0, 1}) {
		t.Error("{0,1} is not independent")
	}
}

// TestBFSProperties is a property test: BFS distances satisfy the triangle
// inequality along edges and are realized by shortest paths.
func TestBFSProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%20
		g, err := graph.RandomConnected(n, 0.2, rng)
		if err != nil {
			return false
		}
		dist := g.BFS(0)
		for _, e := range g.Edges() {
			d := dist[e[0]] - dist[e[1]]
			if d > 1 || d < -1 {
				return false
			}
		}
		for v := 0; v < n; v++ {
			p := g.ShortestPath(0, v)
			if len(p)-1 != dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEdgesSortedAndOwned(t *testing.T) {
	g, err := graph.Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	if len(edges) != 5 {
		t.Fatalf("got %d edges", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Errorf("edges not sorted: %v before %v", a, b)
		}
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Errorf("edge %v not normalized u < v", e)
		}
	}
	if g.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestFromFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, f := range []graph.Family{
		graph.FamilyPath, graph.FamilyCycle, graph.FamilyStar, graph.FamilyComplete,
		graph.FamilyGrid, graph.FamilyTree, graph.FamilyRandom,
	} {
		g, err := graph.FromFamily(f, 9, 3, rng)
		if err != nil {
			t.Errorf("FromFamily(%s): %v", f, err)
			continue
		}
		if !g.Connected() {
			t.Errorf("FromFamily(%s) disconnected", f)
		}
	}
	g, err := graph.FromFamily(graph.FamilyBoundedD, 9, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.Diameter() != 3 {
		t.Errorf("boundedD diameter = %d", g.Diameter())
	}
	if _, err := graph.FromFamily("nope", 5, 1, rng); err == nil {
		t.Error("unknown family should fail")
	}
}
