package graph_test

import (
	"math/rand"
	"reflect"
	"testing"

	"thinunison/internal/graph"
)

// model is the reference implementation a Delta must agree with: a plain
// edge-set plus crash bookkeeping, rebuilt from scratch with graph.New.
type model struct {
	n       int
	edges   map[[2]int]bool
	crashed map[int]bool
	saved   map[int][]int
}

func newModel(g *graph.Graph) *model {
	m := &model{n: g.N(), edges: map[[2]int]bool{}, crashed: map[int]bool{}, saved: map[int][]int{}}
	for _, e := range g.Edges() {
		m.edges[e] = true
	}
	return m
}

func norm(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func (m *model) insert(u, v int) {
	if u == v || u < 0 || v < 0 || u >= m.n || v >= m.n || m.crashed[u] || m.crashed[v] {
		return
	}
	m.edges[norm(u, v)] = true
}

func (m *model) delete(u, v int) {
	if u == v || u < 0 || v < 0 || u >= m.n || v >= m.n {
		return
	}
	delete(m.edges, norm(u, v))
}

func (m *model) crash(v int) {
	if v < 0 || v >= m.n || m.crashed[v] {
		return
	}
	var nbrs []int
	for e := range m.edges {
		if e[0] == v {
			nbrs = append(nbrs, e[1])
		} else if e[1] == v {
			nbrs = append(nbrs, e[0])
		}
	}
	for _, u := range nbrs {
		delete(m.edges, norm(u, v))
	}
	m.crashed[v] = true
	m.saved[v] = nbrs
}

func (m *model) revive(v int) {
	if v < 0 || v >= m.n || !m.crashed[v] {
		return
	}
	delete(m.crashed, v)
	for _, u := range m.saved[v] {
		if m.crashed[u] {
			m.saved[u] = append(m.saved[u], v)
			continue
		}
		m.edges[norm(u, v)] = true
	}
	delete(m.saved, v)
}

// rebuild constructs the model's edge set from scratch via graph.New.
func (m *model) rebuild(t testing.TB) *graph.Graph {
	t.Helper()
	var edges [][2]int
	for e := range m.edges {
		edges = append(edges, e)
	}
	g, err := graph.New(m.n, edges)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return g
}

// applyOp drives one scripted operation into both the delta and the model.
// op selects the kind, u/v the operands (reduced mod n by the caller).
func applyOp(t testing.TB, d *graph.Delta, m *model, op, u, v int) {
	t.Helper()
	switch op % 4 {
	case 0:
		if err := d.InsertEdge(u, v); err == nil {
			m.insert(u, v)
		}
	case 1:
		if err := d.DeleteEdge(u, v); err == nil {
			m.delete(u, v)
		}
	case 2:
		if err := d.Crash(u); err == nil {
			m.crash(u)
		}
	case 3:
		if err := d.Revive(u); err == nil {
			m.revive(u)
		}
	}
}

// checkAgainstRebuild asserts that the delta-mutated graph is structurally
// identical to a from-scratch graph.New rebuild of the model's edge set:
// same N/M, equal sorted-ascending adjacency (the CSR invariant every
// engine's binary-search HasEdge depends on), equal edge lists, and the same
// connectivity verdict.
func checkAgainstRebuild(t testing.TB, g *graph.Graph, m *model) {
	t.Helper()
	want := m.rebuild(t)
	if g.N() != want.N() || g.M() != want.M() {
		t.Fatalf("size mismatch: delta graph n=%d m=%d, rebuild n=%d m=%d", g.N(), g.M(), want.N(), want.M())
	}
	for v := 0; v < g.N(); v++ {
		got := g.Neighbors(v)
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("node %d adjacency not strictly ascending: %v", v, got)
			}
		}
		if w := want.Neighbors(v); !reflect.DeepEqual(append([]int{}, got...), append([]int{}, w...)) {
			t.Fatalf("node %d adjacency mismatch: delta %v, rebuild %v", v, got, w)
		}
	}
	if g.Connected() != want.Connected() {
		t.Fatalf("connectivity mismatch: delta %v, rebuild %v", g.Connected(), want.Connected())
	}
	if want.Connected() {
		if err := g.Validate(); err != nil {
			t.Fatalf("Validate on connected delta graph: %v", err)
		}
	}
}

// TestDeltaRandomAgainstRebuild runs random mutation sequences with periodic
// compaction and compares the in-place-mutated graph against a from-scratch
// rebuild after every Apply — the deterministic twin of FuzzDeltaApply.
func TestDeltaRandomAgainstRebuild(t *testing.T) {
	for _, n := range []int{2, 5, 9, 17} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			g, err := graph.RandomConnected(n, 0.3, rng)
			if err != nil {
				t.Fatal(err)
			}
			d := graph.NewDelta(g)
			m := newModel(g)
			for step := 0; step < 200; step++ {
				applyOp(t, d, m, rng.Intn(4), rng.Intn(n), rng.Intn(n))
				if rng.Intn(7) == 0 {
					d.Apply()
					checkAgainstRebuild(t, g, m)
				}
			}
			d.Apply()
			checkAgainstRebuild(t, g, m)
		}
	}
}

// TestDeltaMergedView pins the pre-commit query surface: HasEdge, Degree,
// Connected and DiameterBounds must describe the staged (merged) topology,
// and cancelling operations must restore the base exactly.
func TestDeltaMergedView(t *testing.T) {
	g, err := graph.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewDelta(g)
	if !d.HasEdge(0, 1) || d.HasEdge(0, 3) {
		t.Fatal("merged view must start at the base graph")
	}
	if err := d.InsertEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if !d.HasEdge(0, 3) || d.Degree(0) != 3 || d.Pending() != 1 {
		t.Fatalf("staged insertion not visible: has=%v deg=%d pending=%d", d.HasEdge(0, 3), d.Degree(0), d.Pending())
	}
	if g.HasEdge(0, 3) {
		t.Fatal("staged insertion must not touch the base graph before Apply")
	}
	if lo, up := d.DiameterBounds(); lo < 1 || up > 2*3 {
		t.Fatalf("merged diameter bounds out of range: [%d, %d]", lo, up)
	}
	// A cycle edge is never a bridge; the merged view stays connected.
	if err := d.DeleteEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	if !d.Connected() {
		t.Fatal("cycle minus one edge plus a chord must stay connected")
	}
	// Cancel both ops: the delta is empty again and Apply is a no-op.
	if err := d.DeleteEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.InsertEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 0 {
		t.Fatalf("cancelled ops left %d pending", d.Pending())
	}
	if changes, touched := d.Apply(); changes != nil || touched != nil {
		t.Fatalf("empty Apply returned %v, %v", changes, touched)
	}
	if g.M() != 6 {
		t.Fatalf("base graph changed by cancelled batch: m=%d", g.M())
	}
}

// TestDeltaApplyReporting pins the Apply contract: committed changes sorted
// by (U, V) with U < V, touched nodes sorted and distinct, Applied
// accumulating.
func TestDeltaApplyReporting(t *testing.T) {
	g, err := graph.Path(5)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewDelta(g)
	if err := d.InsertEdge(4, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	changes, touched := d.Apply()
	wantChanges := []graph.EdgeChange{{U: 0, V: 4, Added: true}, {U: 1, V: 2, Added: false}}
	if !reflect.DeepEqual(changes, wantChanges) {
		t.Fatalf("changes = %v, want %v", changes, wantChanges)
	}
	if want := []int{0, 1, 2, 4}; !reflect.DeepEqual(touched, want) {
		t.Fatalf("touched = %v, want %v", touched, want)
	}
	if d.Applied() != 2 {
		t.Fatalf("Applied = %d, want 2", d.Applied())
	}
	if !g.HasEdge(0, 4) || g.HasEdge(1, 2) || g.M() != 4 {
		t.Fatalf("base graph not mutated to the merged view: %v", g)
	}
}

// TestDeltaCrashRevive covers the crash/revive macro including the
// crashed-neighbor handover: edges between two crashed nodes must resurface
// exactly when both endpoints are back.
func TestDeltaCrashRevive(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewDelta(g)
	m := newModel(g)
	script := []struct{ op, u int }{
		{2, 0}, // crash 0
		{2, 1}, // crash 1 (edge 0-1 already gone)
		{3, 0}, // revive 0: edge 0-1 handed to 1's saved list
		{3, 1}, // revive 1: edge 0-1 restored
	}
	for _, s := range script {
		applyOp(t, d, m, s.op, s.u, 0)
		d.Apply()
		checkAgainstRebuild(t, g, m)
	}
	if g.M() != 6 {
		t.Fatalf("complete graph not fully restored after crash/revive cycle: m=%d", g.M())
	}
	// Edge ops against a crashed endpoint are rejected.
	if err := d.Crash(3); err != nil {
		t.Fatal(err)
	}
	if err := d.InsertEdge(0, 3); err == nil {
		t.Fatal("insert against a crashed endpoint must fail")
	}
	if err := d.DeleteEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !d.Crashed(3) || d.Crashed(0) {
		t.Fatal("crash bookkeeping wrong")
	}
}

// FuzzDeltaApply feeds arbitrary mutation scripts to a Delta and checks the
// in-place-compacted graph against a from-scratch graph.New rebuild: equal
// adjacency (sorted ascending), equal size, and a clean Validate whenever
// the result is connected.
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 3}, uint8(5))
	f.Add([]byte{2, 0, 0, 3, 0, 0, 1, 4, 1}, uint8(7))
	f.Add([]byte{1, 0, 1, 1, 1, 2, 1, 2, 3}, uint8(4))
	f.Fuzz(func(t *testing.T, script []byte, size uint8) {
		n := 2 + int(size)%14
		g, err := graph.Cycle(max(n, 3))
		if err != nil {
			t.Fatal(err)
		}
		n = g.N()
		d := graph.NewDelta(g)
		m := newModel(g)
		for i := 0; i+2 < len(script); i += 3 {
			applyOp(t, d, m, int(script[i]), int(script[i+1])%n, int(script[i+2])%n)
			if script[i]%5 == 4 {
				d.Apply()
				checkAgainstRebuild(t, g, m)
			}
		}
		d.Apply()
		checkAgainstRebuild(t, g, m)
	})
}
