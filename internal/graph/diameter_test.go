package graph_test

import (
	"math/rand"
	"testing"

	"thinunison/internal/graph"
)

// TestKnownDiameterMatchesExact cross-checks the analytic family diameters
// (used by large-scale campaigns in place of the quadratic exact computation)
// against Graph.Diameter on instances small enough to measure.
func TestKnownDiameterMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, f := range graph.Families() {
		if f == graph.FamilyRandom {
			continue // diameter depends on random choices; KnownDiameter declines
		}
		for _, n := range []int{1, 2, 3, 4, 5, 8, 9, 12, 16, 17, 25, 31, 32, 33, 64, 100} {
			d := 3
			if !validFamilySize(f, n, d) {
				continue
			}
			g, err := graph.FromFamily(f, n, d, rng)
			if err != nil {
				t.Fatalf("%s n=%d: %v", f, n, err)
			}
			known, ok := graph.KnownDiameter(f, g.N(), d)
			if !ok {
				t.Errorf("%s n=%d: KnownDiameter declined", f, n)
				continue
			}
			if exact := g.Diameter(); known != exact {
				t.Errorf("%s n=%d (built n=%d): KnownDiameter %d, exact %d", f, n, g.N(), known, exact)
			}
		}
	}
	if _, ok := graph.KnownDiameter(graph.FamilyRandom, 32, 0); ok {
		t.Error("KnownDiameter claimed the random family")
	}
}

func validFamilySize(f graph.Family, n, d int) bool {
	switch f {
	case graph.FamilyCycle:
		return n >= 3
	case graph.FamilyBoundedD:
		return d >= 1 && d < n
	default:
		return n >= 1
	}
}

// TestDiameterBounds checks the double-sweep bounds bracket the exact
// diameter on assorted graphs, and are exact lower bounds on trees.
func TestDiameterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	graphs := map[string]*graph.Graph{}
	for _, n := range []int{1, 2, 7, 20} {
		g, err := graph.Path(n)
		if err != nil {
			t.Fatal(err)
		}
		graphs["path"+string(rune('0'+n%10))] = g
	}
	if g, err := graph.RandomConnected(40, 0.1, rng); err == nil {
		graphs["random"] = g
	}
	if g, err := graph.Grid(4, 7); err == nil {
		graphs["grid"] = g
	}
	if g, err := graph.CompleteBinaryTree(37); err == nil {
		graphs["tree"] = g
	}
	for name, g := range graphs {
		lower, upper := g.DiameterBounds()
		exact := g.Diameter()
		if lower > exact || upper < exact {
			t.Errorf("%s: bounds [%d, %d] do not bracket exact diameter %d", name, lower, upper, exact)
		}
	}
	// Trees: the double sweep's lower bound is exact.
	tree, err := graph.CompleteBinaryTree(37)
	if err != nil {
		t.Fatal(err)
	}
	if lower, _ := tree.DiameterBounds(); lower != tree.Diameter() {
		t.Errorf("tree lower bound %d != exact %d", lower, tree.Diameter())
	}
}

// TestParseFamily round-trips every family name and rejects junk.
func TestParseFamily(t *testing.T) {
	for _, f := range graph.Families() {
		got, err := graph.ParseFamily(string(f))
		if err != nil || got != f {
			t.Errorf("ParseFamily(%q) = %v, %v", f, got, err)
		}
	}
	if _, err := graph.ParseFamily("moebius"); err == nil {
		t.Error("ParseFamily accepted an unknown name")
	}
}

// TestBoundedDiameterLargeN exercises the O(n+m) certificate on an instance
// far beyond what the quadratic check could afford in a test.
func TestBoundedDiameterLargeN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := graph.BoundedDiameter(100_000, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100_000 {
		t.Fatalf("built %d nodes", g.N())
	}
	lower, upper := g.DiameterBounds()
	if lower > 4 || upper < 4 {
		t.Errorf("bounds [%d, %d] inconsistent with diameter 4", lower, upper)
	}
}
