// Package graph provides the undirected-graph substrate on which all stone
// age (SA) algorithms in this repository run.
//
// Graphs are finite, simple, connected and undirected, matching the model of
// Emek & Keren (PODC 2021). Nodes are identified by dense integer IDs in
// [0, N). The package offers constructors for the graph families used in the
// experiments (paths, cycles, stars, complete graphs, grids, trees, random
// connected graphs and bounded-diameter families) together with the metric
// helpers (BFS, distance, eccentricity, diameter) that the analysis of the
// paper is phrased in.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node of a Graph. IDs are dense integers in [0, N).
type NodeID = int

var (
	// ErrEmptyGraph is returned when a graph with zero nodes is requested.
	ErrEmptyGraph = errors.New("graph: graph must have at least one node")

	// ErrDisconnected is returned by validation helpers when the graph is
	// not connected. The SA model is defined over connected graphs only.
	ErrDisconnected = errors.New("graph: graph is not connected")

	// ErrSelfLoop is returned when an edge (v, v) is added.
	ErrSelfLoop = errors.New("graph: self loops are not allowed")
)

// OutOfRangeError reports a node identifier outside [0, N).
type OutOfRangeError struct {
	ID NodeID
	N  int
}

func (e *OutOfRangeError) Error() string {
	return fmt.Sprintf("graph: node %d out of range [0, %d)", e.ID, e.N)
}

// Graph is a finite simple undirected graph with nodes 0..N-1.
//
// The zero value is not usable; construct graphs with New or one of the
// family builders in this package. Graph values are immutable through this
// type's own API (Builder freezes adjacency lists), so they may be shared
// freely across goroutines; the one sanctioned mutation path is a Delta
// overlay, whose Apply re-compacts the CSR arrays in place at a point where
// no reader is iterating (engines apply churn at step boundaries, on the
// coordinator).
//
// Adjacency is stored in compressed sparse row (CSR) form: one flat
// neighbors slice plus per-node offsets. Iterating a node's neighborhood —
// the innermost loop of every simulation step — then walks contiguous
// memory, which matters at 10^5 nodes where per-node slices would scatter
// across the heap.
type Graph struct {
	n         int
	m         int      // number of edges
	offsets   []int    // offsets[v]..offsets[v+1] delimit v's neighbors; len n+1
	neighbors []NodeID // concatenated sorted adjacency lists; len 2m
}

// Builder incrementally assembles a Graph. It deduplicates edges and rejects
// self loops. The zero value is not usable; use NewBuilder.
type Builder struct {
	n     int
	edges map[[2]NodeID]struct{}
}

// NewBuilder returns a Builder for a graph on n nodes.
func NewBuilder(n int) (*Builder, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	return &Builder{n: n, edges: make(map[[2]NodeID]struct{})}, nil
}

// AddEdge records the undirected edge (u, v). Adding an existing edge is a
// no-op. Self loops and out-of-range endpoints are errors.
func (b *Builder) AddEdge(u, v NodeID) error {
	if u == v {
		return ErrSelfLoop
	}
	for _, x := range [2]NodeID{u, v} {
		if x < 0 || x >= b.n {
			return &OutOfRangeError{ID: x, N: b.n}
		}
	}
	if u > v {
		u, v = v, u
	}
	b.edges[[2]NodeID{u, v}] = struct{}{}
	return nil
}

// Build freezes the builder into an immutable CSR Graph. It does not require
// connectivity; call Graph.Validate if the graph must be connected.
func (b *Builder) Build() *Graph {
	offsets := make([]int, b.n+1)
	for e := range b.edges {
		offsets[e[0]+1]++
		offsets[e[1]+1]++
	}
	for v := 0; v < b.n; v++ {
		offsets[v+1] += offsets[v]
	}
	neighbors := make([]NodeID, 2*len(b.edges))
	fill := make([]int, b.n)
	copy(fill, offsets[:b.n])
	for e := range b.edges {
		neighbors[fill[e[0]]] = e[1]
		fill[e[0]]++
		neighbors[fill[e[1]]] = e[0]
		fill[e[1]]++
	}
	g := &Graph{n: b.n, m: len(b.edges), offsets: offsets, neighbors: neighbors}
	for v := 0; v < b.n; v++ {
		sort.Ints(g.Neighbors(v))
	}
	return g
}

// New constructs a graph on n nodes from an explicit edge list.
func New(n int, edges [][2]NodeID) (*Graph, error) {
	b, err := NewBuilder(n)
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// FromCSR reconstructs a graph directly from its compressed-sparse-row
// adjacency (the inverse of CSR), validating shape: offsets must be a
// non-decreasing [0..2m] ramp of length n+1 and every adjacency list must be
// sorted, self-loop-free and in range. It exists for checkpoint restore
// (internal/snapshot), where a saved graph — possibly mutated mid-run by
// Delta churn, so not reproducible from any family builder — must come back
// byte-identical. The slices are copied; the caller keeps ownership.
//
// Symmetry of the adjacency relation is the caller's contract (a snapshot
// written from a real Graph always satisfies it); validating it here would
// double restore cost for no new information.
func FromCSR(n int, offsets []int, neighbors []NodeID) (*Graph, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	if len(offsets) != n+1 || offsets[0] != 0 || offsets[n] != len(neighbors) || len(neighbors)%2 != 0 {
		return nil, fmt.Errorf("graph: malformed CSR (%d offsets, %d adjacency entries)", len(offsets), len(neighbors))
	}
	g := &Graph{
		n:         n,
		m:         len(neighbors) / 2,
		offsets:   make([]int, n+1),
		neighbors: make([]NodeID, len(neighbors)),
	}
	copy(g.offsets, offsets)
	copy(g.neighbors, neighbors)
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return nil, fmt.Errorf("graph: CSR offsets decrease at node %d", v)
		}
		prev := -1
		for _, w := range g.Neighbors(v) {
			if w < 0 || w >= n {
				return nil, &OutOfRangeError{ID: w, N: n}
			}
			if w == v {
				return nil, ErrSelfLoop
			}
			if w <= prev {
				return nil, fmt.Errorf("graph: adjacency of node %d unsorted or duplicated", v)
			}
			prev = w
		}
	}
	return g, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Neighbors returns the sorted adjacency list of v: a view into the graph's
// CSR storage. The returned slice is owned by the graph and must not be
// modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int { return g.offsets[v+1] - g.offsets[v] }

// CSR exposes the raw compressed-sparse-row adjacency: offsets has length
// N()+1 and neighbors[offsets[v]:offsets[v+1]] is the sorted neighbor list of
// v. The slices are the live storage, shared with the graph, and must be
// treated as read-only; after a Delta.Apply re-compaction they must be
// re-fetched (the backing arrays may have been replaced). Batch kernels
// (sa.BuildSignals) consume them directly — NodeID is an alias of int, so
// neighbors passes as []int without copying.
func (g *Graph) CSR() (offsets []int, neighbors []NodeID) {
	return g.offsets, g.neighbors
}

// HasEdge reports whether the edge (u, v) is present.
func (g *Graph) HasEdge(u, v NodeID) bool {
	l := g.Neighbors(u)
	i := sort.SearchInts(l, v)
	return i < len(l) && l[i] == v
}

// Edges returns all edges as (u, v) pairs with u < v, sorted
// lexicographically. The slice is freshly allocated.
func (g *Graph) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				out = append(out, [2]NodeID{u, v})
			}
		}
	}
	return out
}

// Validate checks that the graph is connected (the SA model requires it).
func (g *Graph) Validate() error {
	if g.n == 0 {
		return ErrEmptyGraph
	}
	if !g.Connected() {
		return ErrDisconnected
	}
	return nil
}

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return false
	}
	seen := 0
	for _, d := range g.BFS(0) {
		if d >= 0 {
			seen++
		}
	}
	return seen == g.n
}

// BFS returns the BFS distance from src to every node; unreachable nodes get
// distance -1. The returned map is a dense slice indexed by NodeID.
func (g *Graph) BFS(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Distance returns the hop distance between u and v, or -1 if disconnected.
func (g *Graph) Distance(u, v NodeID) int { return g.BFS(u)[v] }

// Eccentricity returns the maximum BFS distance from v to any node, or -1 if
// the graph is disconnected.
func (g *Graph) Eccentricity(v NodeID) int {
	ecc := 0
	for _, d := range g.BFS(v) {
		if d == -1 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the diameter of the graph (maximum eccentricity), or -1
// if the graph is disconnected. It runs a BFS from every node, which is fine
// for the laptop-scale instances used in the experiments.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.n; v++ {
		e := g.Eccentricity(v)
		if e == -1 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// DiameterBounds returns cheap lower and upper bounds on the diameter using
// a double BFS sweep (two BFS traversals total, O(n + m)): the lower bound is
// the eccentricity of the node found farthest from node 0, and the upper
// bound is twice the smaller of the two observed eccentricities (diam <=
// 2 ecc(v) for every v). On trees the lower bound is the exact diameter.
// Both are -1 if the graph is disconnected. Large-scale campaigns use this
// instead of the exact all-pairs Diameter, which is quadratic in n.
func (g *Graph) DiameterBounds() (lower, upper int) {
	ecc0 := 0
	far := 0
	for v, d := range g.BFS(0) {
		if d == -1 {
			return -1, -1
		}
		if d > ecc0 {
			ecc0 = d
			far = v
		}
	}
	eccFar := g.Eccentricity(far)
	lower = eccFar
	upper = 2 * ecc0
	if 2*eccFar < upper {
		upper = 2 * eccFar
	}
	if upper < lower {
		upper = lower
	}
	return lower, upper
}

// ShortestPath returns one shortest path from u to v (inclusive of both
// endpoints), or nil if v is unreachable from u.
func (g *Graph) ShortestPath(u, v NodeID) []NodeID {
	dist := g.BFS(u)
	if dist[v] == -1 {
		return nil
	}
	path := make([]NodeID, dist[v]+1)
	path[dist[v]] = v
	cur := v
	for d := dist[v] - 1; d >= 0; d-- {
		for _, w := range g.Neighbors(cur) {
			if dist[w] == d {
				cur = w
				break
			}
		}
		path[d] = cur
	}
	return path
}

// Ball returns all nodes within hop distance at most r from v, sorted.
func (g *Graph) Ball(v NodeID, r int) []NodeID {
	dist := g.BFS(v)
	var out []NodeID
	for u, d := range dist {
		if d >= 0 && d <= r {
			out = append(out, u)
		}
	}
	return out
}

// IsIndependentSet reports whether the given node set is independent.
func (g *Graph) IsIndependentSet(set []NodeID) bool {
	in := make(map[NodeID]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for _, v := range set {
		for _, u := range g.Neighbors(v) {
			if in[u] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether the given node set is an MIS:
// independent, and every node outside the set has a neighbor inside it.
func (g *Graph) IsMaximalIndependentSet(set []NodeID) bool {
	if !g.IsIndependentSet(set) {
		return false
	}
	in := make(map[NodeID]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for v := 0; v < g.n; v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if in[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// String returns a short human-readable description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.n, g.m)
}
