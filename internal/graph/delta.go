package graph

import (
	"fmt"
	"sort"
)

// EdgeChange is one committed topology mutation: the undirected edge (U, V)
// with U < V was added (Added) or removed. Delta.Apply reports the changes it
// committed so engines can repair incremental state (frontier dirty bits,
// GoodMonitor violation counters, shard boundary classification) edge by
// edge instead of rebuilding it from scratch.
type EdgeChange struct {
	U, V  NodeID
	Added bool
}

// ErrCrashed is returned when an edge operation names a crashed endpoint.
var ErrCrashed = fmt.Errorf("graph: endpoint is crashed")

// Delta is a mutation overlay over a Graph: a batch of edge insertions and
// deletions (plus the node crash/revive macros built on them) staged against
// the base topology and committed in one amortized CSR re-compaction.
//
// Staged operations are overrides of the base adjacency, so they cancel
// exactly: deleting a staged insertion (or re-inserting a staged deletion)
// returns the edge to its base state at zero cost. The merged view —
// base graph plus staged overrides — is queryable at any time (HasEdge,
// Degree, Connected, DiameterBounds), which is what lets churn drivers
// test an operation's admissibility (connectivity, diameter drift) before
// committing anything.
//
// Apply commits the staged batch by rebuilding the base graph's CSR arrays
// IN PLACE: every holder of the *Graph — engines, monitors, partitions —
// observes the new topology through the pointer it already has, with no
// re-plumbing. One Apply costs O(n + m + ops); batching b operations per
// Apply amortizes the compaction to O((n + m)/b) per op. Apply must only run
// while no reader is iterating the graph (engines call it at step
// boundaries, on the coordinator).
//
// The node set is fixed: a "crashed" node stays in [0, N) but loses all its
// incident edges (its saved adjacency is restored by Revive). Deltas are not
// safe for concurrent use.
type Delta struct {
	g *Graph

	// over[u][v] overrides the presence of edge (u, v) in the merged view:
	// true = present (staged insertion), false = absent (staged deletion).
	// Entries exist only where the merged view differs from the base graph,
	// and always symmetrically for both endpoints.
	over map[NodeID]map[NodeID]bool

	crashed map[NodeID]bool
	saved   map[NodeID][]NodeID // adjacency to restore on Revive

	applied int // committed ops across all Applies
}

// NewDelta returns an empty overlay over g. The delta retains g and mutates
// it on Apply.
func NewDelta(g *Graph) *Delta {
	return &Delta{
		g:       g,
		over:    make(map[NodeID]map[NodeID]bool),
		crashed: make(map[NodeID]bool),
		saved:   make(map[NodeID][]NodeID),
	}
}

// Graph returns the base graph the delta mutates.
func (d *Delta) Graph() *Graph { return d.g }

func (d *Delta) check(u, v NodeID) error {
	if u == v {
		return ErrSelfLoop
	}
	for _, x := range [2]NodeID{u, v} {
		if x < 0 || x >= d.g.n {
			return &OutOfRangeError{ID: x, N: d.g.n}
		}
	}
	return nil
}

// setOver stages edge (u, v) to state present, cancelling the override when
// it matches the base graph.
func (d *Delta) setOver(u, v NodeID, present bool) {
	if d.g.HasEdge(u, v) == present {
		d.clearOver(u, v)
		return
	}
	for _, p := range [2][2]NodeID{{u, v}, {v, u}} {
		m := d.over[p[0]]
		if m == nil {
			m = make(map[NodeID]bool)
			d.over[p[0]] = m
		}
		m[p[1]] = present
	}
}

func (d *Delta) clearOver(u, v NodeID) {
	for _, p := range [2][2]NodeID{{u, v}, {v, u}} {
		if m := d.over[p[0]]; m != nil {
			delete(m, p[1])
			if len(m) == 0 {
				delete(d.over, p[0])
			}
		}
	}
}

// HasEdge reports whether the merged view (base graph plus staged overrides)
// contains the edge (u, v).
func (d *Delta) HasEdge(u, v NodeID) bool {
	if m := d.over[u]; m != nil {
		if present, ok := m[v]; ok {
			return present
		}
	}
	return d.g.HasEdge(u, v)
}

// InsertEdge stages the insertion of edge (u, v). Inserting an edge already
// present in the merged view is a no-op; inserting a staged deletion cancels
// it. Crashed endpoints are rejected (revive the node first).
func (d *Delta) InsertEdge(u, v NodeID) error {
	if err := d.check(u, v); err != nil {
		return err
	}
	if d.crashed[u] || d.crashed[v] {
		return fmt.Errorf("graph: insert (%d, %d): %w", u, v, ErrCrashed)
	}
	if !d.HasEdge(u, v) {
		d.setOver(u, v, true)
	}
	return nil
}

// DeleteEdge stages the deletion of edge (u, v). Deleting an edge absent
// from the merged view is a no-op; deleting a staged insertion cancels it.
func (d *Delta) DeleteEdge(u, v NodeID) error {
	if err := d.check(u, v); err != nil {
		return err
	}
	if d.HasEdge(u, v) {
		d.setOver(u, v, false)
	}
	return nil
}

// Crashed reports whether node v is currently crashed.
func (d *Delta) Crashed(v NodeID) bool { return d.crashed[v] }

// Crash stages the removal of every edge incident to v in the merged view,
// saving them for Revive. Crashing a crashed node is a no-op.
func (d *Delta) Crash(v NodeID) error {
	if v < 0 || v >= d.g.n {
		return &OutOfRangeError{ID: v, N: d.g.n}
	}
	if d.crashed[v] {
		return nil
	}
	nbrs := d.appendMergedNeighbors(nil, v)
	for _, u := range nbrs {
		d.setOver(v, u, false)
	}
	d.crashed[v] = true
	d.saved[v] = nbrs
	return nil
}

// Revive restores the saved adjacency of a crashed node. Edges to endpoints
// that are themselves still crashed are handed over to their saved lists, so
// they resurface when (and only when) the other endpoint revives too.
// Reviving an alive node is a no-op.
func (d *Delta) Revive(v NodeID) error {
	if v < 0 || v >= d.g.n {
		return &OutOfRangeError{ID: v, N: d.g.n}
	}
	if !d.crashed[v] {
		return nil
	}
	delete(d.crashed, v)
	for _, u := range d.saved[v] {
		if d.crashed[u] {
			d.saved[u] = append(d.saved[u], v)
			continue
		}
		d.setOver(v, u, true)
	}
	delete(d.saved, v)
	return nil
}

// appendMergedNeighbors appends the merged-view neighbors of v to buf, in no
// particular order.
func (d *Delta) appendMergedNeighbors(buf []NodeID, v NodeID) []NodeID {
	m := d.over[v]
	for _, u := range d.g.Neighbors(v) {
		if present, ok := m[u]; ok && !present {
			continue
		}
		buf = append(buf, u)
	}
	for u, present := range m {
		if present {
			buf = append(buf, u)
		}
	}
	return buf
}

// Degree returns the merged-view degree of v.
func (d *Delta) Degree(v NodeID) int {
	deg := d.g.Degree(v)
	for _, present := range d.over[v] {
		if present {
			deg++
		} else {
			deg--
		}
	}
	return deg
}

// Pending returns the number of staged edge operations (changes relative to
// the base graph).
func (d *Delta) Pending() int {
	pending := 0
	for _, m := range d.over {
		pending += len(m)
	}
	return pending / 2 // overrides are stored symmetrically
}

// bfs runs a BFS over the merged view from src, skipping crashed nodes, and
// returns the distance slice (-1 for unreached) plus the farthest reached
// node and its distance. The far node is the smallest-ID node at maximum
// distance: appendMergedNeighbors ranges over the override maps, so the
// visit order is not deterministic, and the double-sweep diameter bound —
// which feeds the churn admissibility guards and hence the equal-seed
// determinism contract — must not inherit a map-order tie-break.
func (d *Delta) bfs(src NodeID) (dist []int, far NodeID, ecc int) {
	dist = make([]int, d.g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, d.g.n)
	queue = append(queue, src)
	var nbrs []NodeID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nbrs = d.appendMergedNeighbors(nbrs[:0], u)
		for _, w := range nbrs {
			if dist[w] == -1 && !d.crashed[w] {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	far = src
	for v, dd := range dist {
		if dd > ecc {
			ecc = dd
			far = v
		}
	}
	return dist, far, ecc
}

// Connected reports whether the merged view restricted to alive
// (non-crashed) nodes is connected. A view with no alive node reports false.
// Churn drivers use it to test a staged deletion or crash before committing:
// stage the op, check, and cancel it (insert back / revive) if inadmissible.
func (d *Delta) Connected() bool {
	src := NodeID(-1)
	alive := 0
	for v := 0; v < d.g.n; v++ {
		if !d.crashed[v] {
			if src == -1 {
				src = v
			}
			alive++
		}
	}
	if src == -1 {
		return false
	}
	dist, _, _ := d.bfs(src)
	seen := 0
	for v, dd := range dist {
		if dd >= 0 && !d.crashed[v] {
			seen++
		}
	}
	return seen == alive
}

// DiameterBounds returns double-sweep lower and upper bounds on the diameter
// of the merged view restricted to alive nodes (see Graph.DiameterBounds),
// or (-1, -1) when that view is disconnected. Churn drivers use the upper
// bound to keep topology drift within the algorithm's diameter parameter.
func (d *Delta) DiameterBounds() (lower, upper int) {
	src := NodeID(-1)
	for v := 0; v < d.g.n; v++ {
		if !d.crashed[v] {
			src = v
			break
		}
	}
	if src == -1 || !d.Connected() {
		return -1, -1
	}
	_, far, ecc0 := d.bfs(src)
	_, _, eccFar := d.bfs(far)
	lower = eccFar
	upper = 2 * ecc0
	if 2*eccFar < upper {
		upper = 2 * eccFar
	}
	if upper < lower {
		upper = lower
	}
	return lower, upper
}

// Applied returns the total number of edge changes committed by Apply calls
// over the delta's lifetime.
func (d *Delta) Applied() int { return d.applied }

// CheckpointCrashes exports the crash bookkeeping for snapshots: the sorted
// crashed node set and, aligned with it, each crashed node's saved adjacency
// (sorted). The saved lists are semantically sets — Revive re-stages each
// saved edge through the symmetric override map — so sorting them changes
// nothing about a restored delta's behavior while making snapshots
// deterministic. The delta must have no staged operations (snapshots are
// taken at step boundaries, after Apply); CheckpointCrashes panics
// otherwise, because staged overrides are deliberately not serialized.
func (d *Delta) CheckpointCrashes() (crashed []NodeID, saved [][]NodeID) {
	if d.Pending() != 0 {
		panic("graph: CheckpointCrashes with staged operations")
	}
	crashed = make([]NodeID, 0, len(d.crashed))
	for v := range d.crashed {
		crashed = append(crashed, v)
	}
	sort.Ints(crashed)
	saved = make([][]NodeID, len(crashed))
	for i, v := range crashed {
		saved[i] = append([]NodeID(nil), d.saved[v]...)
		sort.Ints(saved[i])
	}
	return crashed, saved
}

// RestoreCrashes is the inverse of CheckpointCrashes: it reinstates the
// crash bookkeeping (crashed set, saved adjacency, lifetime applied counter)
// into a fresh delta over the restored — already crash-compacted — graph.
func (d *Delta) RestoreCrashes(crashed []NodeID, saved [][]NodeID, applied int) error {
	if len(d.crashed) != 0 || d.Pending() != 0 || d.applied != 0 {
		return fmt.Errorf("graph: RestoreCrashes on a non-fresh delta")
	}
	if len(saved) != len(crashed) {
		return fmt.Errorf("graph: %d saved lists for %d crashed nodes", len(saved), len(crashed))
	}
	for i, v := range crashed {
		if v < 0 || v >= d.g.n {
			return &OutOfRangeError{ID: v, N: d.g.n}
		}
		d.crashed[v] = true
		d.saved[v] = append([]NodeID(nil), saved[i]...)
	}
	d.applied = applied
	return nil
}

// Apply commits the staged batch: the base graph's CSR arrays are rebuilt in
// place to the merged view. It returns the committed edge changes (sorted by
// (U, V), deletions and insertions interleaved) and the touched nodes (the
// sorted distinct endpoints). The staged override set resets; crash/revive
// bookkeeping persists until the nodes are revived. An empty batch returns
// (nil, nil) and leaves the graph untouched.
func (d *Delta) Apply() (changes []EdgeChange, touched []NodeID) {
	if len(d.over) == 0 {
		return nil, nil
	}
	g := d.g
	touched = make([]NodeID, 0, len(d.over))
	for v, m := range d.over {
		touched = append(touched, v)
		for u, present := range m {
			if v < u {
				changes = append(changes, EdgeChange{U: v, V: u, Added: present})
			}
		}
	}
	sort.Ints(touched)
	sort.Slice(changes, func(i, j int) bool {
		a, b := changes[i], changes[j]
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})

	// Re-compact: new offsets from merged degrees, then per-node merges of
	// the (sorted) base adjacency with the node's overrides.
	offsets := make([]int, g.n+1)
	for v := 0; v < g.n; v++ {
		offsets[v+1] = offsets[v] + d.Degree(v)
	}
	neighbors := make([]NodeID, offsets[g.n])
	var adds []NodeID
	for v := 0; v < g.n; v++ {
		m := d.over[v]
		out := neighbors[offsets[v]:offsets[v]:offsets[v+1]]
		if m == nil {
			out = append(out, g.Neighbors(v)...)
		} else {
			adds = adds[:0]
			for u, present := range m {
				if present {
					adds = append(adds, u)
				}
			}
			sort.Ints(adds)
			base := g.Neighbors(v)
			i := 0
			for _, u := range base {
				if present, ok := m[u]; ok && !present {
					continue
				}
				for i < len(adds) && adds[i] < u {
					out = append(out, adds[i])
					i++
				}
				out = append(out, u)
			}
			out = append(out, adds[i:]...)
		}
		if len(out) != offsets[v+1]-offsets[v] {
			panic("graph: delta compaction degree mismatch")
		}
	}
	g.offsets = offsets
	g.neighbors = neighbors
	g.m = len(neighbors) / 2

	d.applied += len(changes)
	d.over = make(map[NodeID]map[NodeID]bool)
	return changes, touched
}
