package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path graph P_n (diameter n-1).
func Path(n int) (*Graph, error) {
	b, err := NewBuilder(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Cycle returns the cycle graph C_n for n >= 3 (diameter floor(n/2)).
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	b, err := NewBuilder(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if err := b.AddEdge(i, (i+1)%n); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Star returns the star graph on n nodes with node 0 at the center
// (diameter 2 for n >= 3).
func Star(n int) (*Graph, error) {
	b, err := NewBuilder(n)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		if err := b.AddEdge(0, i); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Complete returns the complete graph K_n (diameter 1 for n >= 2). Complete
// graphs are the paper's motivating special case: bounded-diameter graphs are
// "a natural extension of complete graphs".
func Complete(n int) (*Graph, error) {
	b, err := NewBuilder(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := b.AddEdge(i, j); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// Grid returns the rows x cols grid graph (diameter rows+cols-2).
func Grid(rows, cols int) (*Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, ErrEmptyGraph
	}
	b, err := NewBuilder(rows * cols)
	if err != nil {
		return nil, err
	}
	id := func(r, c int) NodeID { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := b.AddEdge(id(r, c), id(r, c+1)); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := b.AddEdge(id(r, c), id(r+1, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build(), nil
}

// CompleteBinaryTree returns a complete binary tree on n nodes where node i
// has children 2i+1 and 2i+2.
func CompleteBinaryTree(n int) (*Graph, error) {
	b, err := NewBuilder(n)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		if err := b.AddEdge(i, (i-1)/2); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// RandomTree returns a uniformly random labeled tree on n nodes, generated
// from a random Prüfer-like attachment (each node i >= 1 attaches to a
// uniformly random earlier node).
func RandomTree(n int, rng *rand.Rand) (*Graph, error) {
	b, err := NewBuilder(n)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		if err := b.AddEdge(i, rng.Intn(i)); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// RandomConnected returns a connected Erdős–Rényi-style graph: a random
// spanning tree plus each remaining pair independently with probability p.
func RandomConnected(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: probability %v out of [0,1]", p)
	}
	b, err := NewBuilder(n)
	if err != nil {
		return nil, err
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		if err := b.AddEdge(perm[i], perm[rng.Intn(i)]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				if err := b.AddEdge(i, j); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build(), nil
}

// BoundedDiameter returns a connected graph on n nodes whose diameter is
// exactly d (requires 1 <= d < n). The construction is a path of length d
// (realizing the diameter) with the remaining n-d-1 nodes attached to path
// node min(1, d-1)... specifically to the path's second node, plus random
// chords that never increase the diameter. This is the "almost complete but
// for some broken links" family the paper motivates.
func BoundedDiameter(n, d int, rng *rand.Rand) (*Graph, error) {
	switch {
	case n <= 0:
		return nil, ErrEmptyGraph
	case d < 1 && n > 1:
		return nil, fmt.Errorf("graph: diameter bound %d too small for n=%d", d, n)
	case d >= n:
		return nil, fmt.Errorf("graph: diameter %d impossible with n=%d nodes", d, n)
	}
	if n == 1 {
		return New(1, nil)
	}
	if d == 1 {
		return Complete(n) // diameter 1 forces the complete graph
	}
	b, err := NewBuilder(n)
	if err != nil {
		return nil, err
	}
	// Spine path 0-1-...-d realizes the diameter.
	for i := 0; i < d; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			return nil, err
		}
	}
	// Remaining nodes cluster around the spine's midpoint so they cannot
	// stretch the diameter: each attaches to the mid node and a random spine
	// neighbor of it.
	mid := d / 2
	for v := d + 1; v < n; v++ {
		if err := b.AddEdge(v, mid); err != nil {
			return nil, err
		}
		// Random extra chord among cluster nodes (keeps distances <= d).
		if v > d+1 && rng.Intn(2) == 0 {
			if err := b.AddEdge(v, d+1+rng.Intn(v-d-1)); err != nil {
				return nil, err
			}
		}
	}
	g := b.Build()
	// Certify diameter == d with two BFS traversals instead of the quadratic
	// all-pairs Diameter: ecc(0) == d gives the lower bound (0 and the far
	// spine end realize it), and every pair is joined through the spine
	// midpoint, so the sum of the two largest BFS-from-mid distances is an
	// upper bound. Both equal d for this construction, and the O(n + m) check
	// keeps 10^5-node campaign instances affordable.
	if ecc := g.Eccentricity(0); ecc != d {
		return nil, fmt.Errorf("graph: bounded-diameter construction has ecc(0)=%d, want %d", ecc, d)
	}
	top1, top2 := 0, 0
	for _, dist := range g.BFS(mid) {
		if dist > top1 {
			top1, top2 = dist, top1
		} else if dist > top2 {
			top2 = dist
		}
	}
	if top1+top2 > d {
		return nil, fmt.Errorf("graph: bounded-diameter construction certifies only diameter <= %d, want %d", top1+top2, d)
	}
	return g, nil
}

// Hypercube returns the dim-dimensional hypercube (n = 2^dim, diameter dim).
func Hypercube(dim int) (*Graph, error) {
	if dim < 0 || dim > 20 {
		return nil, fmt.Errorf("graph: hypercube dimension %d out of range [0,20]", dim)
	}
	n := 1 << uint(dim)
	b, err := NewBuilder(n)
	if err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			u := v ^ (1 << uint(bit))
			if v < u {
				if err := b.AddEdge(v, u); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build(), nil
}

// Family identifies a named graph family used by the experiment sweeps.
type Family string

// Families used throughout the experiments.
const (
	FamilyPath     Family = "path"
	FamilyCycle    Family = "cycle"
	FamilyStar     Family = "star"
	FamilyComplete Family = "complete"
	FamilyGrid     Family = "grid"
	FamilyTree     Family = "tree"
	FamilyRandom   Family = "random"
	FamilyBoundedD Family = "boundedD"
)

// Families returns every named family, in a fixed order.
func Families() []Family {
	return []Family{
		FamilyPath, FamilyCycle, FamilyStar, FamilyComplete,
		FamilyGrid, FamilyTree, FamilyRandom, FamilyBoundedD,
	}
}

// ParseFamily resolves a family name as used in campaign specs and CLI flags.
func ParseFamily(name string) (Family, error) {
	for _, f := range Families() {
		if string(f) == name {
			return f, nil
		}
	}
	return "", fmt.Errorf("graph: unknown family %q", name)
}

// gridSide returns the side length FromFamily uses for FamilyGrid.
func gridSide(n int) int {
	side := 1
	for side*side < n {
		side++
	}
	return side
}

// KnownDiameter returns the analytically known diameter of an n-node member
// of the family (d is the FamilyBoundedD parameter), or ok=false for families
// whose diameter depends on random choices (FamilyRandom) and must be
// measured. Campaigns use it to parameterize AlgAU on 10^5-node instances
// without an exact all-pairs diameter computation.
func KnownDiameter(f Family, n, d int) (int, bool) {
	if n == 1 {
		return 0, true
	}
	switch f {
	case FamilyPath:
		return n - 1, true
	case FamilyCycle:
		return n / 2, true
	case FamilyStar:
		if n == 2 {
			return 1, true
		}
		return 2, true
	case FamilyComplete:
		return 1, true
	case FamilyGrid:
		return 2 * (gridSide(n) - 1), true
	case FamilyTree:
		// Complete binary tree (children of i are 2i+1, 2i+2, bottom level
		// filled left to right): the diameter joins the deepest leaves of the
		// root's two subtrees, and within any subtree the leftmost descent is
		// a longest root-to-leaf path.
		if n <= 2 {
			return n - 1, true
		}
		return (1 + leftmostDepth(1, n)) + (1 + leftmostDepth(2, n)), true
	case FamilyBoundedD:
		if d >= n {
			return n - 1, false
		}
		return d, true
	default:
		return 0, false
	}
}

// leftmostDepth returns the depth (edges below r) of the leftmost descent
// from node r in the complete binary tree on n nodes.
func leftmostDepth(r, n int) int {
	depth := 0
	for v := 2*r + 1; v < n; v = 2*v + 1 {
		depth++
	}
	return depth
}

// FromFamily builds an n-node member of the family. The rng is only used by
// randomized families; d is only used by FamilyBoundedD.
func FromFamily(f Family, n, d int, rng *rand.Rand) (*Graph, error) {
	switch f {
	case FamilyPath:
		return Path(n)
	case FamilyCycle:
		return Cycle(n)
	case FamilyStar:
		return Star(n)
	case FamilyComplete:
		return Complete(n)
	case FamilyGrid:
		side := gridSide(n)
		return Grid(side, side)
	case FamilyTree:
		return CompleteBinaryTree(n)
	case FamilyRandom:
		return RandomConnected(n, 0.15, rng)
	case FamilyBoundedD:
		return BoundedDiameter(n, d, rng)
	default:
		return nil, fmt.Errorf("graph: unknown family %q", f)
	}
}
