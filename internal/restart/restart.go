// Package restart implements module Restart of Sec. 3.3: a synchronous
// reset primitive with 2D + 1 states σ(0), …, σ(2D) that AlgMIS and AlgLE
// invoke upon detecting an illegal configuration. Its guarantee (Thm. 3.1):
// if some node is in a Restart state at time t0, then there is a time
// t ≤ t0 + 3D at which all nodes exit Restart concurrently, each moving to
// the designer-chosen uniform initial state q*0.
//
// The three rules, for a node v with sensed state set S(v):
//
//  1. if S(v) contains both Restart and non-Restart states, v ← σ(0);
//  2. if S(v) ⊆ Restart states and S(v) ≠ {σ(2D)}, v ← σ(imin + 1) where
//     imin = min{i : σ(i) ∈ S(v)};
//  3. if S(v) = {σ(2D)}, v exits to q*0.
//
// The module is generic over the wrapped algorithm's state type: State[S]
// is either a Restart position or an algorithm state, and Step applies the
// rules around a wrapped algorithm step.
package restart

import (
	"fmt"
	"math/rand"
)

// State is the composite node state: either inside Restart at position
// Pos ∈ {0..2D} (with Alg zeroed for canonical comparability), or outside
// Restart carrying the wrapped algorithm state Alg.
type State[S comparable] struct {
	InRestart bool
	Pos       int
	Alg       S
}

// String renders σ(i) or the wrapped state.
func (s State[S]) String() string {
	if s.InRestart {
		return fmt.Sprintf("σ(%d)", s.Pos)
	}
	return fmt.Sprintf("%v", s.Alg)
}

// Module wires the Restart rules around a wrapped synchronous algorithm.
type Module[S comparable] struct {
	d int
	// Init returns the uniform initial state q*0 installed on exit.
	init func() S
	// Step is the wrapped algorithm's round function. Returning detect =
	// true makes the node enter Restart (move to σ(0)) instead of adopting
	// the returned state.
	step func(self S, sensed []S, rng *rand.Rand) (next S, detect bool)
}

// NewModule returns a Restart module for diameter bound d >= 1 wrapping the
// given algorithm step and initial state.
func NewModule[S comparable](
	d int,
	init func() S,
	step func(self S, sensed []S, rng *rand.Rand) (S, bool),
) (*Module[S], error) {
	if d < 1 {
		return nil, fmt.Errorf("restart: diameter bound must be >= 1, got %d", d)
	}
	if init == nil || step == nil {
		return nil, fmt.Errorf("restart: init and step must be non-nil")
	}
	return &Module[S]{d: d, init: init, step: step}, nil
}

// D returns the diameter bound.
func (m *Module[S]) D() int { return m.d }

// MaxPos returns 2D, the index of Restart-exit.
func (m *Module[S]) MaxPos() int { return 2 * m.d }

// Enter returns the Restart-entry state σ(0).
func (m *Module[S]) Enter() State[S] { return State[S]{InRestart: true} }

// Fresh returns the uniform initial state q*0 (wrapped).
func (m *Module[S]) Fresh() State[S] { return State[S]{Alg: m.init()} }

// Step is the composite round function implementing the three Restart rules
// around the wrapped algorithm. It matches syncsim.StepFunc[State[S]].
func (m *Module[S]) Step(self State[S], sensed []State[S], rng *rand.Rand) State[S] {
	anyRestart, anyAlg := false, false
	minPos := m.MaxPos() + 1
	allMax := true
	for _, s := range sensed {
		if s.InRestart {
			anyRestart = true
			if s.Pos < minPos {
				minPos = s.Pos
			}
			if s.Pos != m.MaxPos() {
				allMax = false
			}
		} else {
			anyAlg = true
		}
	}

	if anyRestart {
		switch {
		case anyAlg:
			// Rule 1: mixed neighborhood — (re)enter at σ(0).
			return m.Enter()
		case allMax:
			// Rule 3: S(v) = {σ(2D)} — concurrent exit to q*0.
			return m.Fresh()
		default:
			// Rule 2: climb to σ(imin + 1).
			next := minPos + 1
			if next > m.MaxPos() {
				next = m.MaxPos()
			}
			return State[S]{InRestart: true, Pos: next}
		}
	}

	// Entirely outside Restart: run the wrapped algorithm; a detection
	// enters Restart.
	sensedAlg := make([]S, len(sensed))
	for i, s := range sensed {
		sensedAlg[i] = s.Alg
	}
	next, detect := m.step(self.Alg, sensedAlg, rng)
	if detect {
		return m.Enter()
	}
	return State[S]{Alg: next}
}
