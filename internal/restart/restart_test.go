package restart_test

import (
	"fmt"
	"math/rand"
	"testing"

	"thinunison/internal/graph"
	"thinunison/internal/restart"
	"thinunison/internal/syncsim"
)

// trivial wrapped algorithm: a saturating counter that never detects faults.
type counter struct{ N int }

func newModule(t *testing.T, d int) *restart.Module[counter] {
	t.Helper()
	mod, err := restart.NewModule[counter](
		d,
		func() counter { return counter{} },
		func(self counter, _ []counter, _ *rand.Rand) (counter, bool) {
			return counter{N: self.N + 1}, false
		},
	)
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	return mod
}

func TestModuleValidation(t *testing.T) {
	if _, err := restart.NewModule[counter](0, func() counter { return counter{} },
		func(c counter, _ []counter, _ *rand.Rand) (counter, bool) { return c, false }); err == nil {
		t.Error("d=0 should fail")
	}
	if _, err := restart.NewModule[counter](1, nil, nil); err == nil {
		t.Error("nil funcs should fail")
	}
}

func runEngine(t *testing.T, g *graph.Graph, mod *restart.Module[counter], initial []restart.State[counter]) *syncsim.Engine[restart.State[counter]] {
	t.Helper()
	eng, err := syncsim.New(g, mod.Step, initial, 7)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestTheorem31 is experiment E5: for every graph in a suite and every
// "some node in Restart" initial configuration pattern, all nodes exit
// Restart concurrently within 3D rounds of the first round, landing in q*0.
func TestTheorem31(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	graphs := map[string]*graph.Graph{}
	for name, build := range map[string]func() (*graph.Graph, error){
		"path5":   func() (*graph.Graph, error) { return graph.Path(5) },
		"cycle6":  func() (*graph.Graph, error) { return graph.Cycle(6) },
		"star7":   func() (*graph.Graph, error) { return graph.Star(7) },
		"k5":      func() (*graph.Graph, error) { return graph.Complete(5) },
		"grid3x3": func() (*graph.Graph, error) { return graph.Grid(3, 3) },
		"rand9":   func() (*graph.Graph, error) { return graph.RandomConnected(9, 0.3, rng) },
	} {
		g, err := build()
		if err != nil {
			t.Fatal(err)
		}
		graphs[name] = g
	}

	for name, g := range graphs {
		d := g.Diameter()
		if d < 1 {
			d = 1
		}
		mod := newModule(t, d)
		for trial := 0; trial < 20; trial++ {
			t.Run(fmt.Sprintf("%s/trial%d", name, trial), func(t *testing.T) {
				// Adversarial initial configuration: random mix of Restart
				// positions and algorithm states, with at least one node in
				// Restart.
				initial := make([]restart.State[counter], g.N())
				for v := range initial {
					if rng.Intn(2) == 0 {
						initial[v] = restart.State[counter]{InRestart: true, Pos: rng.Intn(2*d + 1)}
					} else {
						initial[v] = restart.State[counter]{Alg: counter{N: rng.Intn(5)}}
					}
				}
				initial[rng.Intn(g.N())] = restart.State[counter]{InRestart: true, Pos: rng.Intn(2*d + 1)}

				eng := runEngine(t, g, mod, initial)
				// Theorem 3.1: there is a time t <= t0 + O(D) at which ALL
				// nodes exit Restart concurrently. Nodes may exit early in
				// adversarial initializations (e.g. a σ(2D) pocket), but
				// rule 1 pulls them back in; the guarantee is the eventual
				// concurrent global exit. We verify it occurs within a 6D+4
				// budget (entry floods, one climb, exit march).
				budget := 6*d + 4
				concurrentExit := false
				for r := 0; r < budget && !concurrentExit; r++ {
					prev := eng.States()
					eng.Round()
					cur := eng.States()
					all := true
					for v := range cur {
						if !prev[v].InRestart || cur[v].InRestart || cur[v].Alg.N != 0 {
							all = false
							break
						}
					}
					concurrentExit = all
				}
				if !concurrentExit {
					t.Fatalf("no concurrent global exit within %d rounds", budget)
				}
			})
		}
	}
}

// TestRestartFlood checks Lemma 3.9's flood behavior: a single node entering
// Restart pulls the whole graph into Restart within D rounds.
func TestRestartFlood(t *testing.T) {
	g, err := graph.Path(6)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Diameter()
	mod := newModule(t, d)
	initial := make([]restart.State[counter], g.N())
	for v := range initial {
		initial[v] = restart.State[counter]{Alg: counter{N: 3}}
	}
	initial[0] = mod.Enter()
	eng := runEngine(t, g, mod, initial)
	for r := 0; r < d; r++ {
		eng.Round()
	}
	for v, s := range eng.States() {
		if !s.InRestart {
			t.Errorf("node %d not in Restart after D=%d rounds", v, d)
		}
	}
}

// TestNoSpuriousRestart checks that a configuration with no Restart state
// and no detection never enters Restart.
func TestNoSpuriousRestart(t *testing.T) {
	g, err := graph.Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	mod := newModule(t, g.Diameter())
	initial := make([]restart.State[counter], g.N())
	eng := runEngine(t, g, mod, initial)
	for r := 0; r < 50; r++ {
		eng.Round()
	}
	for v, s := range eng.States() {
		if s.InRestart {
			t.Errorf("node %d spuriously entered Restart", v)
		}
		if s.Alg.N != 50 {
			t.Errorf("node %d counter = %d, want 50 (wrapped algorithm must run undisturbed)", v, s.Alg.N)
		}
	}
}

// TestDetectionTriggersGlobalReset checks the wrapper integration: a wrapped
// algorithm that detects a fault at one node resets the entire graph.
func TestDetectionTriggersGlobalReset(t *testing.T) {
	g, err := graph.Star(6)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Diameter()
	detectOnce := true
	mod, err := restart.NewModule[counter](
		d,
		func() counter { return counter{} },
		func(self counter, _ []counter, _ *rand.Rand) (counter, bool) {
			if detectOnce && self.N == 5 {
				detectOnce = false
				return self, true
			}
			return counter{N: self.N + 1}, false
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]restart.State[counter], g.N())
	eng, err := syncsim.New(g, mod.Step, initial, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Run long enough for detection (at N=5) plus a full restart cycle.
	for r := 0; r < 5+4*d+3; r++ {
		eng.Round()
	}
	// After the reset every counter restarted from 0: all values must be
	// well below 5 + rounds and equal across nodes (concurrent exit).
	first := eng.State(0)
	if first.InRestart {
		t.Fatal("still in Restart after the budget")
	}
	for v := 0; v < g.N(); v++ {
		if eng.State(v) != first {
			t.Errorf("node %d state %v differs from node 0 %v after concurrent reset",
				v, eng.State(v), first)
		}
	}
	if first.Alg.N >= 5+4*d+3 {
		t.Errorf("counter %d too large; reset did not happen", first.Alg.N)
	}
}
