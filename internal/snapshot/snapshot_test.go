package snapshot_test

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"thinunison/internal/snapshot"
)

// TestContainerRoundTrip: Write∘Read is the identity on section maps,
// including empty payloads and caller-defined section names the container
// has never heard of.
func TestContainerRoundTrip(t *testing.T) {
	sections := []snapshot.Section{
		{Name: "engine", Data: []byte{1, 2, 3, 4, 5}},
		{Name: "monitor", Data: nil},
		{Name: "x-custom.meta", Data: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, sections); err != nil {
		t.Fatal(err)
	}
	got, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sections) {
		t.Fatalf("read %d sections, wrote %d", len(got), len(sections))
	}
	for _, s := range sections {
		data, ok := got[s.Name]
		if !ok {
			t.Fatalf("section %q lost in round-trip", s.Name)
		}
		if !bytes.Equal(data, s.Data) {
			t.Fatalf("section %q payload corrupted", s.Name)
		}
	}
}

// TestContainerRejectsBadInput: the reader refuses wrong magic, wrong
// version, duplicate sections, implausible lengths, and EVERY truncation of
// a valid stream — a checkpoint must fail loudly, never parse partially.
func TestContainerRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, []snapshot.Section{
		{Name: "a", Data: []byte("payload-a")},
		{Name: "b", Data: []byte("pb")},
	}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	for cut := 0; cut < len(valid); cut++ {
		if _, err := snapshot.Read(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d bytes parsed", cut, len(valid))
		}
	}

	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xFF
	if _, err := snapshot.Read(bytes.NewReader(badMagic)); err == nil {
		t.Fatal("bad magic parsed")
	}

	badVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badVersion[8:12], snapshot.Version+1)
	if _, err := snapshot.Read(bytes.NewReader(badVersion)); err == nil {
		t.Fatal("future format version parsed")
	}

	var dup bytes.Buffer
	if err := snapshot.Write(&dup, []snapshot.Section{
		{Name: "a", Data: []byte("one")},
		{Name: "a", Data: []byte("two")},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Read(bytes.NewReader(dup.Bytes())); err == nil {
		t.Fatal("duplicate section parsed")
	}

	// Writer-side name validation: empty and oversized names are refused.
	if err := snapshot.Write(&bytes.Buffer{}, []snapshot.Section{{Name: ""}}); err == nil {
		t.Fatal("empty section name accepted")
	}
	long := string(bytes.Repeat([]byte("x"), 256))
	if err := snapshot.Write(&bytes.Buffer{}, []snapshot.Section{{Name: long}}); err == nil {
		t.Fatal("256-byte section name accepted")
	}
}

// TestCodecRoundTrip: a random interleaving of every Enc primitive decodes
// back exactly, and Done certifies exhaustion.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		type op struct {
			kind int
			u    uint64
			i    int64
			b    bool
			us   []uint64
			is   []int
			i32s []int32
			blob []byte
			s    string
		}
		nOps := 1 + rng.Intn(20)
		ops := make([]op, nOps)
		var e snapshot.Enc
		for k := range ops {
			o := op{kind: rng.Intn(8)}
			switch o.kind {
			case 0:
				o.u = rng.Uint64()
				e.U64(o.u)
			case 1:
				o.i = rng.Int63() - rng.Int63()
				e.I64(o.i)
			case 2:
				o.i = int64(int(rng.Int63()) - int(rng.Int63()))
				e.Int(int(o.i))
			case 3:
				o.b = rng.Intn(2) == 0
				e.Bool(o.b)
			case 4:
				o.us = make([]uint64, rng.Intn(5))
				for j := range o.us {
					o.us[j] = rng.Uint64()
				}
				e.U64s(o.us)
			case 5:
				o.is = make([]int, rng.Intn(5))
				for j := range o.is {
					o.is[j] = rng.Int() - rng.Int()
				}
				e.Ints(o.is)
			case 6:
				o.i32s = make([]int32, rng.Intn(5))
				for j := range o.i32s {
					o.i32s[j] = int32(rng.Uint32())
				}
				e.Int32s(o.i32s)
			case 7:
				o.blob = make([]byte, rng.Intn(9))
				rng.Read(o.blob)
				e.Blob(o.blob)
			}
			ops[k] = o
		}
		d := snapshot.NewDec(e.Bytes())
		for k, o := range ops {
			switch o.kind {
			case 0:
				if got := d.U64(); got != o.u {
					t.Fatalf("trial %d op %d: U64 %d != %d", trial, k, got, o.u)
				}
			case 1:
				if got := d.I64(); got != o.i {
					t.Fatalf("trial %d op %d: I64 %d != %d", trial, k, got, o.i)
				}
			case 2:
				if got := d.Int(); got != int(o.i) {
					t.Fatalf("trial %d op %d: Int %d != %d", trial, k, got, o.i)
				}
			case 3:
				if got := d.Bool(); got != o.b {
					t.Fatalf("trial %d op %d: Bool %v != %v", trial, k, got, o.b)
				}
			case 4:
				got := d.U64s()
				if len(got) != len(o.us) {
					t.Fatalf("trial %d op %d: U64s len %d != %d", trial, k, len(got), len(o.us))
				}
				for j := range got {
					if got[j] != o.us[j] {
						t.Fatalf("trial %d op %d: U64s[%d]", trial, k, j)
					}
				}
			case 5:
				got := d.Ints()
				if len(got) != len(o.is) {
					t.Fatalf("trial %d op %d: Ints len %d != %d", trial, k, len(got), len(o.is))
				}
				for j := range got {
					if got[j] != o.is[j] {
						t.Fatalf("trial %d op %d: Ints[%d]", trial, k, j)
					}
				}
			case 6:
				got := d.Int32s()
				if len(got) != len(o.i32s) {
					t.Fatalf("trial %d op %d: Int32s len %d != %d", trial, k, len(got), len(o.i32s))
				}
				for j := range got {
					if got[j] != o.i32s[j] {
						t.Fatalf("trial %d op %d: Int32s[%d]", trial, k, j)
					}
				}
			case 7:
				if got := d.Blob(); !bytes.Equal(got, o.blob) {
					t.Fatalf("trial %d op %d: Blob %x != %x", trial, k, got, o.blob)
				}
			}
		}
		if err := d.Done(); err != nil {
			t.Fatalf("trial %d: Done: %v", trial, err)
		}
	}
}

// TestDecStickyErrors: truncating an encoded payload anywhere must surface
// through Err/Done, getters after the failure return zero values, and no
// read panics.
func TestDecStickyErrors(t *testing.T) {
	var e snapshot.Enc
	e.U64(7)
	e.Ints([]int{1, 2, 3})
	e.Bool(true)
	e.Blob([]byte("tail"))
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := snapshot.NewDec(full[:cut])
		d.U64()
		d.Ints()
		d.Bool()
		d.Blob()
		if d.Err() == nil {
			t.Fatalf("truncation at %d of %d went undetected", cut, len(full))
		}
		if d.Done() == nil {
			t.Fatalf("Done passed on truncation at %d", cut)
		}
		// Post-error getters stay zero-valued.
		if d.U64() != 0 || d.Bool() || d.Ints() != nil {
			t.Fatalf("post-error getter returned non-zero at cut %d", cut)
		}
	}
	// Trailing garbage is rejected by Done even when all reads succeed.
	d := snapshot.NewDec(append(append([]byte(nil), full...), 0xFF))
	d.U64()
	d.Ints()
	d.Bool()
	d.Blob()
	if d.Err() != nil {
		t.Fatal("valid prefix should decode")
	}
	if d.Done() == nil {
		t.Fatal("Done accepted trailing bytes")
	}
}

// FuzzContainerRead: arbitrary bytes must never panic the reader; valid
// containers must round-trip.
func FuzzContainerRead(f *testing.F) {
	var seed bytes.Buffer
	if err := snapshot.Write(&seed, []snapshot.Section{{Name: "engine", Data: []byte{9, 9}}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("TUSNAP01 garbage behind a real magic"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sections, err := snapshot.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must re-serialize and re-parse to the same map.
		out := make([]snapshot.Section, 0, len(sections))
		for name, payload := range sections {
			out = append(out, snapshot.Section{Name: name, Data: payload})
		}
		var buf bytes.Buffer
		if err := snapshot.Write(&buf, out); err != nil {
			t.Fatalf("re-write of parsed snapshot failed: %v", err)
		}
		again, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-written snapshot failed: %v", err)
		}
		if len(again) != len(sections) {
			t.Fatalf("round-trip changed section count: %d != %d", len(again), len(sections))
		}
		for name, payload := range sections {
			if !bytes.Equal(again[name], payload) {
				t.Fatalf("round-trip changed section %q", name)
			}
		}
	})
}

// FuzzDec: arbitrary payloads driven through a data-dependent getter
// sequence must never panic; the sticky error machinery absorbs every
// malformed shape.
func FuzzDec(f *testing.F) {
	var e snapshot.Enc
	e.Ints([]int{4, 5})
	e.Blob([]byte("x"))
	f.Add(e.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := snapshot.NewDec(data)
		for i := 0; i < 16 && d.Err() == nil; i++ {
			switch i % 8 {
			case 0:
				d.U64()
			case 1:
				d.I64()
			case 2:
				d.Int()
			case 3:
				d.Bool()
			case 4:
				d.U64s()
			case 5:
				d.Ints()
			case 6:
				d.Int32s()
			case 7:
				d.Blob()
			}
		}
		_ = d.Done()
	})
}
