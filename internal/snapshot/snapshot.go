// Package snapshot is the versioned binary container format for engine
// checkpoints: step-boundary serializations of a full run state that restore
// byte-identically in a fresh process (see sim.SaveState / sim.Restore).
//
// A snapshot is a sequence of named, length-prefixed sections behind a magic
// header. Sections keep layers independent: each stateful layer (config,
// rng cursors, round tracker, frontier, partition, word slabs, churn,
// metrics, monitor) owns one section and encodes it with the fixed-width
// little-endian primitives of Enc/Dec. Unknown sections are preserved by
// Read so callers can attach their own (e.g. a monitor state or run
// metadata) without the container caring.
//
// The format favors simplicity and restore speed over size: fixed-width
// integers, no compression, whole-snapshot reads. A 10^5-node AU snapshot is
// a few MB and round-trips in well under a second.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the container format version, bumped on incompatible layout
// changes. Readers reject snapshots from a different version rather than
// guessing: a checkpoint is a correctness artifact, not a best-effort cache.
//
// Version 2 added a CRC-32C checksum over name||payload to every section
// prefix and an exact-EOF check after the last section, so any corruption of
// a stored snapshot — bit rot, torn writes, truncation, trailing garbage —
// is detected at Read instead of silently restoring a wrong run state.
const Version = 2

// magic identifies a snapshot stream ("ThinUnison SNAPshot").
var magic = [8]byte{'T', 'U', 'S', 'N', 'A', 'P', '0', '1'}

// maxSectionSize bounds a single section (1 GiB) so a corrupt length prefix
// fails fast instead of attempting a huge allocation.
const maxSectionSize = 1 << 30

// Section is one named payload of a snapshot.
type Section struct {
	Name string
	Data []byte
}

// Write emits the container: magic, version, section count, then each
// section as (name length, CRC-32C of name||payload, payload length, name,
// payload), all fixed-width little-endian.
func Write(w io.Writer, sections []Section) error {
	var hdr [20]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(sections)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}
	var pfx [16]byte
	for _, s := range sections {
		if len(s.Name) == 0 || len(s.Name) > 255 {
			return fmt.Errorf("snapshot: bad section name %q", s.Name)
		}
		binary.LittleEndian.PutUint32(pfx[:4], uint32(len(s.Name)))
		binary.LittleEndian.PutUint32(pfx[4:8], sectionCRC(s.Name, s.Data))
		binary.LittleEndian.PutUint64(pfx[8:16], uint64(len(s.Data)))
		if _, err := w.Write(pfx[:]); err != nil {
			return fmt.Errorf("snapshot: write section %s: %w", s.Name, err)
		}
		if _, err := io.WriteString(w, s.Name); err != nil {
			return fmt.Errorf("snapshot: write section %s: %w", s.Name, err)
		}
		if _, err := w.Write(s.Data); err != nil {
			return fmt.Errorf("snapshot: write section %s: %w", s.Name, err)
		}
	}
	return nil
}

// Read parses a container written by Write, returning the sections by name.
// It validates magic, version and every section's CRC, and rejects
// truncated, oversized, corrupted or trailing-garbage input.
func Read(r io.Reader) (map[string][]byte, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: read header: %w", err)
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic (not a snapshot file)")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return nil, fmt.Errorf("snapshot: format version %d, want %d", v, Version)
	}
	count := binary.LittleEndian.Uint64(hdr[12:20])
	if count > 1<<16 {
		return nil, fmt.Errorf("snapshot: implausible section count %d", count)
	}
	out := make(map[string][]byte, count)
	var pfx [16]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r, pfx[:]); err != nil {
			return nil, fmt.Errorf("snapshot: read section prefix: %w", err)
		}
		nameLen := binary.LittleEndian.Uint32(pfx[:4])
		crc := binary.LittleEndian.Uint32(pfx[4:8])
		dataLen := binary.LittleEndian.Uint64(pfx[8:16])
		if nameLen == 0 || nameLen > 255 || dataLen > maxSectionSize {
			return nil, fmt.Errorf("snapshot: corrupt section prefix (name %d, data %d)", nameLen, dataLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("snapshot: read section name: %w", err)
		}
		data := make([]byte, dataLen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("snapshot: read section %s: %w", name, err)
		}
		if got := sectionCRC(string(name), data); got != crc {
			return nil, fmt.Errorf("snapshot: section %s checksum mismatch (stored %08x, computed %08x)", name, crc, got)
		}
		if _, dup := out[string(name)]; dup {
			return nil, fmt.Errorf("snapshot: duplicate section %s", name)
		}
		out[string(name)] = data
	}
	// A snapshot is a whole-file artifact: anything after the last section is
	// corruption (e.g. a torn rewrite of a shorter snapshot over a longer one).
	var one [1]byte
	if _, err := io.ReadFull(r, one[:]); err != io.EOF {
		return nil, fmt.Errorf("snapshot: trailing bytes after final section")
	}
	return out, nil
}

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms the campaigns run on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// sectionCRC is the per-section checksum: CRC-32C over name then payload,
// binding the payload to its name so swapped sections are also detected.
func sectionCRC(name string, data []byte) uint32 {
	c := crc32.Checksum([]byte(name), crcTable)
	return crc32.Update(c, crcTable, data)
}

// Enc builds a section payload out of fixed-width little-endian primitives.
// The zero value is ready to use.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf }

// U64 appends one unsigned 64-bit word.
func (e *Enc) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends one signed 64-bit word.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends one int as a 64-bit word.
func (e *Enc) Int(v int) { e.U64(uint64(int64(v))) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// U64s appends a length-prefixed []uint64.
func (e *Enc) U64s(v []uint64) {
	e.Int(len(v))
	for _, x := range v {
		e.U64(x)
	}
}

// Ints appends a length-prefixed []int.
func (e *Enc) Ints(v []int) {
	e.Int(len(v))
	for _, x := range v {
		e.Int(x)
	}
}

// IntsFunc appends n ints produced by f(0..n-1), length-prefixed; it lets
// callers serialize []NodeID / []sa.State slices without an intermediate
// []int copy.
func (e *Enc) IntsFunc(n int, f func(i int) int) {
	e.Int(n)
	for i := 0; i < n; i++ {
		e.Int(f(i))
	}
}

// Int32s appends a length-prefixed []int32.
func (e *Enc) Int32s(v []int32) {
	e.Int(len(v))
	for _, x := range v {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(x))
	}
}

// Blob appends a length-prefixed byte blob.
func (e *Enc) Blob(v []byte) {
	e.Int(len(v))
	e.buf = append(e.buf, v...)
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Int(len(s))
	e.buf = append(e.buf, s...)
}

// Dec reads back what Enc wrote. Errors are sticky: after the first
// malformed read every getter returns a zero value, and Err reports the
// failure, so decode paths can run straight-line and check once.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Done reports an error unless the payload was consumed exactly.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("snapshot: %d trailing bytes in section", len(d.buf)-d.off)
	}
	return nil
}

func (d *Dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: truncated section (offset %d of %d)", d.off, len(d.buf))
	}
}

// U64 reads one unsigned 64-bit word.
func (d *Dec) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads one signed 64-bit word.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads one int-sized word.
func (d *Dec) Int() int { return int(d.I64()) }

// Bool reads one boolean byte.
func (d *Dec) Bool() bool {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return false
	}
	b := d.buf[d.off]
	d.off++
	return b != 0
}

// length reads a non-negative length prefix bounded by the remaining bytes
// divided by elemSize, guarding against corrupt prefixes.
func (d *Dec) length(elemSize int) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || (elemSize > 0 && n > (len(d.buf)-d.off)/elemSize) {
		if d.err == nil {
			d.err = fmt.Errorf("snapshot: corrupt length prefix %d", n)
		}
		return 0
	}
	return n
}

// U64s reads a length-prefixed []uint64.
func (d *Dec) U64s() []uint64 {
	n := d.length(8)
	if d.err != nil {
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = d.U64()
	}
	return v
}

// Ints reads a length-prefixed []int.
func (d *Dec) Ints() []int {
	n := d.length(8)
	if d.err != nil {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = d.Int()
	}
	return v
}

// IntsFunc reads a length-prefixed int sequence through f, the mirror of
// Enc.IntsFunc.
func (d *Dec) IntsFunc(f func(i, v int)) int {
	n := d.length(8)
	if d.err != nil {
		return 0
	}
	for i := 0; i < n; i++ {
		f(i, d.Int())
	}
	return n
}

// Int32s reads a length-prefixed []int32.
func (d *Dec) Int32s() []int32 {
	n := d.length(4)
	if d.err != nil {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		if d.off+4 > len(d.buf) {
			d.fail()
			return nil
		}
		v[i] = int32(binary.LittleEndian.Uint32(d.buf[d.off:]))
		d.off += 4
	}
	return v
}

// Blob reads a length-prefixed byte blob (a copy).
func (d *Dec) Blob() []byte {
	n := d.length(1)
	if d.err != nil {
		return nil
	}
	v := make([]byte, n)
	copy(v, d.buf[d.off:])
	d.off += n
	return v
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.length(1)
	if d.err != nil {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}
