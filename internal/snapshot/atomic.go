package snapshot

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"thinunison/internal/failpoint"
)

// AtomicWriteFile durably replaces path with the bytes produced by write,
// using the temp-file + fsync + rename protocol: the payload is staged in a
// temp file in the same directory, synced, renamed over path, and the
// directory synced. A crash (or injected fault) at any point leaves either
// the old file or the new one — never a half-written artifact — so a
// -checkpoint interrupted mid-write can never clobber a good older snapshot
// with a torn TUSNAP01 container.
//
// The failpoint sites snapshot/write (torn payload) and snapshot/fsync
// (failed sync) let chaos schedules exercise both crash windows.
func AtomicWriteFile(path string, write func(w io.Writer) error) (err error) {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	payload := buf.Bytes()

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: create temp for %s: %w", path, err)
	}
	// CreateTemp opens 0600; the artifact should carry the usual 0644 (modulo
	// umask, like os.Create).
	tmp.Chmod(0o644)
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	if f := failpoint.Eval(failpoint.SnapshotWrite); f.Kind == failpoint.FailTorn {
		// Persist a torn prefix, then fail: the temp file is discarded and
		// path is untouched, which is exactly the crash-safety contract.
		tmp.Write(payload[:f.CutAt(len(payload))])
		return fmt.Errorf("snapshot: write %s: %w", path, f.Err())
	}
	if _, err := tmp.Write(payload); err != nil {
		return fmt.Errorf("snapshot: write %s: %w", path, err)
	}
	if f := failpoint.Eval(failpoint.SnapshotFsync); f.Kind == failpoint.FailError {
		return fmt.Errorf("snapshot: sync %s: %w", path, f.Err())
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("snapshot: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: rename %s: %w", path, err)
	}
	// Make the rename itself durable. Some platforms cannot fsync a
	// directory; degrade silently there, the rename is still atomic.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
