package snapshot_test

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"thinunison/internal/failpoint"
	"thinunison/internal/snapshot"
)

func container(t testing.TB, sections []snapshot.Section) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, sections); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestContainerDetectsBitFlips pins the v2 CRC contract: flipping any single
// bit of a valid container makes Read fail — no corruption can silently
// restore a wrong run state.
func TestContainerDetectsBitFlips(t *testing.T) {
	good := container(t, []snapshot.Section{
		{Name: "engine", Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Name: "meta", Data: []byte("run 42")},
	})
	if _, err := snapshot.Read(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine container rejected: %v", err)
	}
	for i := range good {
		for bit := 0; bit < 8; bit++ {
			bad := bytes.Clone(good)
			bad[i] ^= 1 << bit
			if _, err := snapshot.Read(bytes.NewReader(bad)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d not detected", i, bit)
			}
		}
	}
}

// TestContainerRejectsTrailingBytes: a shorter snapshot torn over a longer
// one leaves trailing bytes, which v2 rejects.
func TestContainerRejectsTrailingBytes(t *testing.T) {
	good := container(t, []snapshot.Section{{Name: "engine", Data: []byte{9}}})
	for _, tail := range [][]byte{{0}, []byte("junk"), good} {
		if _, err := snapshot.Read(bytes.NewReader(append(bytes.Clone(good), tail...))); err == nil {
			t.Fatalf("trailing %d bytes not detected", len(tail))
		}
	}
}

// FuzzContainerBitFlip: mutate a valid container arbitrarily; if Read still
// accepts the bytes, the sections must be exactly the originals. CRC plus
// the framing checks leave no room for a parse that differs silently.
func FuzzContainerBitFlip(f *testing.F) {
	orig := []snapshot.Section{
		{Name: "engine", Data: []byte{1, 2, 3, 4}},
		{Name: "rng", Data: []byte{0xAA, 0xBB}},
	}
	good := container(f, orig)
	f.Add(good, 0, uint8(1))
	f.Add(good, len(good)-1, uint8(0x80))
	f.Fuzz(func(t *testing.T, data []byte, pos int, mask uint8) {
		mut := bytes.Clone(data)
		if len(mut) > 0 {
			mut[((pos%len(mut))+len(mut))%len(mut)] ^= mask
		}
		sections, err := snapshot.Read(bytes.NewReader(mut))
		if err != nil {
			return
		}
		// Parsed: either the mutation was a no-op on a valid container and
		// the content is intact, or the input wasn't our container at all —
		// in both cases re-encoding must be stable (FuzzContainerRead
		// covers that); here we additionally pin that a parse of the
		// *unmutated* seed always matches orig.
		if !bytes.Equal(mut, good) {
			return
		}
		if len(sections) != len(orig) {
			t.Fatalf("section count %d != %d", len(sections), len(orig))
		}
		for _, s := range orig {
			if !bytes.Equal(sections[s.Name], s.Data) {
				t.Fatalf("section %q changed", s.Name)
			}
		}
	})
}

// TestAtomicWriteFile covers the temp+fsync+rename protocol: success
// replaces the file, failures (including injected torn writes and fsync
// faults) leave the previous contents untouched and no temp litter behind.
func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.tusnap")

	writeAll := func(p []byte) func(io.Writer) error {
		return func(w io.Writer) error { _, err := w.Write(p); return err }
	}
	if err := snapshot.AtomicWriteFile(path, writeAll([]byte("v1"))); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("file = %q, want v1", got)
	}

	// Injected torn write: the old file must survive byte-identically.
	failpoint.Arm(failpoint.New(1, []failpoint.Rule{
		{Site: failpoint.SnapshotWrite, Kind: failpoint.FailTorn, Hits: []uint64{1}, Frac: 0.5},
		{Site: failpoint.SnapshotFsync, Kind: failpoint.FailError, Hits: []uint64{1}},
	}))
	defer failpoint.Disarm()
	if err := snapshot.AtomicWriteFile(path, writeAll([]byte("v2-much-longer-payload"))); err == nil {
		t.Fatal("torn write did not error")
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("after torn write file = %q, want v1", got)
	}
	if err := snapshot.AtomicWriteFile(path, writeAll([]byte("v2"))); err == nil {
		t.Fatal("fsync fault did not error")
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("after fsync fault file = %q, want v1", got)
	}

	// Schedule exhausted: the third write succeeds and replaces the file.
	if err := snapshot.AtomicWriteFile(path, writeAll([]byte("v3"))); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v3" {
		t.Fatalf("file = %q, want v3", got)
	}

	// No temp-file litter from the failed attempts.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "ckpt.tusnap" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory litter: %v", names)
	}

	// A write-callback error aborts before any file is touched.
	missing := filepath.Join(dir, "sub", "nope")
	if err := snapshot.AtomicWriteFile(missing, func(w io.Writer) error { return io.ErrClosedPipe }); err == nil {
		t.Fatal("callback error not propagated")
	}
}
