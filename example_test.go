package thinunison_test

import (
	"fmt"

	"thinunison"
)

// ExampleNewUnison shows the core loop: build a graph, start the
// self-stabilizing clock from arbitrary states, wait for synchronization.
func ExampleNewUnison() {
	g, err := thinunison.Cycle(6)
	if err != nil {
		panic(err)
	}
	u, err := thinunison.NewUnison(g, thinunison.WithSeed(7))
	if err != nil {
		panic(err)
	}
	if _, err := u.RunUntilStabilized(u.StabilizationBudget()); err != nil {
		panic(err)
	}
	fmt.Println("states per node:", u.States())
	fmt.Println("stabilized:", u.Stabilized())
	// Output:
	// states per node: 42
	// stabilized: true
}

// ExampleSolveMIS computes a maximal independent set with anonymous
// finite-state nodes.
func ExampleSolveMIS() {
	g, err := thinunison.Path(5)
	if err != nil {
		panic(err)
	}
	res, err := thinunison.SolveMIS(g, thinunison.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("is MIS:", g.IsMaximalIndependentSet(res.InSet))
	// Output:
	// is MIS: true
}

// ExampleSolveLeaderElection elects exactly one leader without identifiers.
func ExampleSolveLeaderElection() {
	g, err := thinunison.Complete(5)
	if err != nil {
		panic(err)
	}
	res, err := thinunison.SolveLeaderElection(g, thinunison.WithSeed(2))
	if err != nil {
		panic(err)
	}
	fmt.Println("a leader was elected:", res.Leader >= 0 && res.Leader < g.N())
	// Output:
	// a leader was elected: true
}
