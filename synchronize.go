package thinunison

import (
	"fmt"
	"math/rand"

	"thinunison/internal/asyncsim"
	"thinunison/internal/synchronizer"
)

// SyncProgram is an anonymous synchronous node program over an arbitrary
// comparable state type: given the node's own state and the set of distinct
// states sensed in its inclusive neighborhood, it returns the next state.
// Programs must be anonymous and size-uniform (no node IDs, no n) and treat
// the sensed slice as an unordered set — the stone age model reveals neither
// order nor multiplicity.
type SyncProgram[S comparable] func(self S, sensed []S, rng *rand.Rand) S

// Synchronized runs a user-provided synchronous node program under an
// asynchronous scheduler via the self-stabilizing synchronizer of
// Corollary 1.2: AlgAU supplies pulses, and the program executes one
// simulated synchronous round per pulse. If the program is self-stabilizing,
// so is the combined asynchronous system.
type Synchronized[S comparable] struct {
	sy  *synchronizer.Synchronizer[S]
	eng *asyncsim.Engine[synchronizer.State[S]]
}

// NewSynchronized wraps program on g. The initial Π-states are taken from
// initial (length n); the AlgAU turns start adversarially (random), so the
// first simulated rounds begin only after the pulse clock stabilizes.
func NewSynchronized[S comparable](g *Graph, program SyncProgram[S], initial []S, opts ...Option) (*Synchronized[S], error) {
	if len(initial) != g.N() {
		return nil, fmt.Errorf("thinunison: %d initial states for %d nodes", len(initial), g.N())
	}
	o, err := buildOptions(g, opts)
	if err != nil {
		return nil, err
	}
	sy, err := synchronizer.New[S](o.d, func(self S, sensed []S, rng *rand.Rand) S {
		return program(self, sensed, rng)
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.seed))
	states := make([]synchronizer.State[S], g.N())
	for v := range states {
		states[v] = synchronizer.State[S]{
			Cur:  initial[v],
			Prev: initial[v],
			Turn: rng.Intn(sy.AU().NumStates()),
		}
	}
	eng, err := asyncsim.New(g, sy.Step, states, o.sched, o.seed)
	if err != nil {
		return nil, err
	}
	return &Synchronized[S]{sy: sy, eng: eng}, nil
}

// Step executes one asynchronous scheduler step.
func (s *Synchronized[S]) Step() { s.eng.Step() }

// RunRounds executes the given number of additional asynchronous rounds.
// Post-stabilization, each round drives at least one simulated synchronous
// round of the wrapped program at every node (amortized).
func (s *Synchronized[S]) RunRounds(rounds int) { s.eng.RunRounds(rounds) }

// Rounds returns the number of completed asynchronous rounds.
func (s *Synchronized[S]) Rounds() int { return s.eng.Rounds() }

// States returns each node's current simulated Π-state.
func (s *Synchronized[S]) States() []S {
	raw := s.eng.States()
	out := make([]S, len(raw))
	for v, st := range raw {
		out[v] = st.Cur
	}
	return out
}

// RunUntil runs until cond holds over the simulated Π-states or maxRounds
// asynchronous rounds elapse; it reports the rounds consumed and success.
func (s *Synchronized[S]) RunUntil(cond func(states []S) bool, maxRounds int) (int, bool) {
	return s.eng.RunUntil(func(e *asyncsim.Engine[synchronizer.State[S]]) bool {
		raw := e.States()
		pi := make([]S, len(raw))
		for v, st := range raw {
			pi[v] = st.Cur
		}
		return cond(pi)
	}, maxRounds)
}

// StateSpaceSize returns |Q*| = |T|·|Q|² for a program with numStates
// states (the Corollary 1.2 accounting).
func (s *Synchronized[S]) StateSpaceSize(numStates int) int {
	return s.sy.StateSpaceSize(numStates)
}
