module thinunison

go 1.24
